//! Health rollup for the DataLens serving stack.
//!
//! [`HealthGate`] folds the live signals of the job service and the HTTP
//! streaming lane — queue depth, per-session backlog, worker failure
//! streaks, SSE lane saturation, last-job-cycle state — into a single
//! three-level verdict:
//!
//! * `pass` — every signal under its degraded threshold; admit everything.
//! * `degraded` — at least one signal between its degraded and hold
//!   thresholds; keep admitting, surface the reasons on `GET /health`.
//! * `hold` — at least one signal at or past its hold threshold; shed new
//!   work (429 + `Retry-After`) before it touches any queue lock, and
//!   refuse new stream subscriptions while existing ones drain.
//!
//! Producers (job service, stream lane) update the gate's atomic inputs
//! and call [`HealthGate::evaluate`]; admission paths read the cached
//! verdict with [`HealthGate::verdict`] — a single atomic load, so the
//! shed path stays O(1) and lock-free.
//!
//! The verdict lattice and machine-readable reason codes follow the
//! rollout-gate shape of the rsBot operations runbook: every reason code
//! maps to one operator action, and every signal carries its evidence
//! (current value, threshold, window) so the operator never has to guess
//! which input tripped the gate.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use datalens_obs::{labeled, Counter, Gauge, Registry};
use parking_lot::Mutex;
use serde_json::{json, Value};

/// Number of recent job completions the drain-rate estimator remembers.
const DRAIN_WINDOW: usize = 32;

/// Ceiling for `Retry-After` hints, in seconds.
const RETRY_AFTER_MAX_SECS: u64 = 60;

/// Rollup verdict, ordered by severity: `Pass < Degraded < Hold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// All signals nominal.
    Pass,
    /// Informational: some signal crossed its degraded threshold.
    Degraded,
    /// Shed load: some signal crossed its hold threshold.
    Hold,
}

impl Verdict {
    /// Wire spelling (`pass` / `degraded` / `hold`).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Degraded => "degraded",
            Verdict::Hold => "hold",
        }
    }

    fn rank(self) -> u8 {
        match self {
            Verdict::Pass => 0,
            Verdict::Degraded => 1,
            Verdict::Hold => 2,
        }
    }

    fn from_rank(rank: u8) -> Verdict {
        match rank {
            0 => Verdict::Pass,
            1 => Verdict::Degraded,
            _ => Verdict::Hold,
        }
    }
}

/// Machine-readable explanation for a non-`pass` signal. Each code maps
/// to one operator action in the README runbook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReasonCode {
    /// The job queue is at or past its backpressure thresholds.
    QueueBackpressureApplied,
    /// One session's backlog dominates the queue.
    SessionBacklogged,
    /// The most recent job cycles failed (streak or last-cycle).
    RetryableFailuresObserved,
    /// Fewer workers alive than the pool was configured with.
    WorkerPoolDegraded,
    /// The SSE lane is at or near its concurrent-stream cap.
    StreamLaneSaturated,
    /// The service is draining for shutdown; nothing new is admitted.
    ShutdownInProgress,
}

impl ReasonCode {
    /// Wire spelling (snake_case).
    pub fn as_str(self) -> &'static str {
        match self {
            ReasonCode::QueueBackpressureApplied => "queue_backpressure_applied",
            ReasonCode::SessionBacklogged => "session_backlogged",
            ReasonCode::RetryableFailuresObserved => "retryable_failures_observed",
            ReasonCode::WorkerPoolDegraded => "worker_pool_degraded",
            ReasonCode::StreamLaneSaturated => "stream_lane_saturated",
            ReasonCode::ShutdownInProgress => "shutdown_in_progress",
        }
    }
}

/// One evaluated signal with its evidence: what was measured, against
/// which threshold, over which window, and what it contributed to the
/// rollup.
#[derive(Debug, Clone)]
pub struct Signal {
    /// Metric-style signal name (`jobs_queue_depth`, `sse_streams_active`, …).
    pub name: &'static str,
    /// Current value at evaluation time.
    pub value: f64,
    /// The threshold this value is judged against. When the signal is
    /// non-pass this is the boundary that was crossed; when it passes it
    /// is the nearest (degraded) boundary.
    pub threshold: f64,
    /// Observation window the value is computed over.
    pub window: &'static str,
    /// This signal's individual verdict.
    pub verdict: Verdict,
    /// Reason code, present when `verdict` is not `Pass`.
    pub reason: Option<ReasonCode>,
}

impl Signal {
    fn to_json(&self) -> Value {
        json!({
            "name": self.name,
            "value": self.value,
            "threshold": self.threshold,
            "window": self.window,
            "verdict": self.verdict.as_str(),
            "reason": match self.reason {
                Some(r) => Value::Str(r.as_str().to_string()),
                None => Value::Null,
            },
        })
    }
}

/// Thresholds for each signal. Ratios are fractions of the configured
/// capacity (queue depth, stream cap); counts are absolute.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthThresholds {
    /// Queue utilisation (queued / depth) at which the gate degrades.
    pub queue_degraded_ratio: f64,
    /// Queue utilisation at which the gate holds and sheds submits.
    pub queue_hold_ratio: f64,
    /// Largest single-session backlog as a fraction of queue depth at
    /// which the gate degrades (one tenant dominating the queue).
    pub session_backlog_ratio: f64,
    /// Consecutive failed jobs at which the gate holds.
    pub failure_streak_hold: u64,
    /// Stream-lane utilisation at which the gate degrades.
    pub stream_degraded_ratio: f64,
    /// Stream-lane utilisation at which the gate holds and refuses new
    /// subscriptions.
    pub stream_hold_ratio: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            queue_degraded_ratio: 0.5,
            queue_hold_ratio: 1.0,
            session_backlog_ratio: 0.5,
            failure_streak_hold: 5,
            stream_degraded_ratio: 0.75,
            stream_hold_ratio: 1.0,
        }
    }
}

/// Result of one [`HealthGate::evaluate`] pass: the folded verdict, the
/// deduplicated reason codes, and the per-signal evidence.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Folded verdict (max severity across signals).
    pub verdict: Verdict,
    /// Deduplicated reason codes from all non-pass signals.
    pub reasons: Vec<ReasonCode>,
    /// Evidence rows, one per evaluated signal.
    pub signals: Vec<Signal>,
    /// Suggested client back-off, derived from the current drain rate.
    pub retry_after_secs: u64,
}

impl HealthReport {
    /// Wire shape served on `GET /health`.
    pub fn to_json(&self) -> Value {
        let mut reasons = Vec::with_capacity(self.reasons.len());
        for r in &self.reasons {
            reasons.push(Value::Str(r.as_str().to_string()));
        }
        let mut signals = Vec::with_capacity(self.signals.len());
        for s in &self.signals {
            signals.push(s.to_json());
        }
        json!({
            "verdict": self.verdict.as_str(),
            "reasons": Value::Arr(reasons),
            "signals": Value::Arr(signals),
            "retry_after_secs": self.retry_after_secs,
        })
    }
}

struct GateMetrics {
    verdict: Arc<Gauge>,
    transitions: [Arc<Counter>; 3],
}

/// Shared health gate. Producers update the atomic inputs and call
/// [`evaluate`](HealthGate::evaluate); admission paths read the cached
/// verdict with a single atomic load.
pub struct HealthGate {
    thresholds: HealthThresholds,
    queued: AtomicU64,
    queue_capacity: AtomicU64,
    session_backlog_max: AtomicU64,
    failure_streak: AtomicU64,
    last_cycle_failed: AtomicBool,
    cycles_seen: AtomicU64,
    workers_alive: AtomicU64,
    workers_total: AtomicU64,
    streams_active: AtomicU64,
    streams_capacity: AtomicU64,
    draining: AtomicBool,
    cached: AtomicU8,
    completions: Mutex<std::collections::VecDeque<Instant>>,
    metrics: Mutex<Option<GateMetrics>>,
}

impl std::fmt::Debug for HealthGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthGate")
            .field("verdict", &self.verdict())
            .field("queued", &self.queued.load(Ordering::SeqCst))
            .field(
                "streams_active",
                &self.streams_active.load(Ordering::SeqCst),
            )
            .finish()
    }
}

impl Default for HealthGate {
    fn default() -> Self {
        HealthGate::new(HealthThresholds::default())
    }
}

impl HealthGate {
    /// Build a gate with the given thresholds. All inputs start at zero
    /// and the cached verdict at `pass`.
    pub fn new(thresholds: HealthThresholds) -> HealthGate {
        HealthGate {
            thresholds,
            queued: AtomicU64::new(0),
            queue_capacity: AtomicU64::new(0),
            session_backlog_max: AtomicU64::new(0),
            failure_streak: AtomicU64::new(0),
            last_cycle_failed: AtomicBool::new(false),
            cycles_seen: AtomicU64::new(0),
            workers_alive: AtomicU64::new(0),
            workers_total: AtomicU64::new(0),
            streams_active: AtomicU64::new(0),
            streams_capacity: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            cached: AtomicU8::new(Verdict::Pass.rank()),
            completions: Mutex::new(std::collections::VecDeque::with_capacity(DRAIN_WINDOW)),
            metrics: Mutex::new(None),
        }
    }

    /// Active thresholds.
    pub fn thresholds(&self) -> &HealthThresholds {
        &self.thresholds
    }

    /// Register the gate's exposition metrics on `registry`:
    /// `health_verdict` (0 = pass, 1 = degraded, 2 = hold) and one
    /// `health_transitions_total{to=…}` counter per verdict level.
    /// Eager registration keeps the dashboard panel showing zeros
    /// before the first transition.
    pub fn bind_registry(&self, registry: &Registry) {
        let metrics = GateMetrics {
            verdict: registry.gauge("health_verdict"),
            transitions: [
                registry.counter(&labeled("health_transitions_total", &[("to", "pass")])),
                registry.counter(&labeled("health_transitions_total", &[("to", "degraded")])),
                registry.counter(&labeled("health_transitions_total", &[("to", "hold")])),
            ],
        };
        metrics.verdict.set(self.verdict().rank() as i64);
        *self.metrics.lock() = Some(metrics);
    }

    // ── producer inputs ──────────────────────────────────────────────

    /// Publish queue occupancy. Call while the queue lock is held so the
    /// snapshot is internally consistent (plain atomic stores — nothing
    /// blocking happens here).
    pub fn set_queue(&self, queued: u64, capacity: u64) {
        self.queued.store(queued, Ordering::SeqCst);
        self.queue_capacity.store(capacity, Ordering::SeqCst);
    }

    /// Publish the largest single-session backlog.
    pub fn set_session_backlog(&self, backlog: u64) {
        self.session_backlog_max.store(backlog, Ordering::SeqCst);
    }

    /// Publish stream-lane occupancy.
    pub fn set_streams(&self, active: u64, capacity: u64) {
        self.streams_active.store(active, Ordering::SeqCst);
        self.streams_capacity.store(capacity, Ordering::SeqCst);
    }

    /// Declare the configured worker-pool size.
    pub fn set_workers_total(&self, total: u64) {
        self.workers_total.store(total, Ordering::SeqCst);
    }

    /// A worker thread came up.
    pub fn worker_started(&self) {
        self.workers_alive.fetch_add(1, Ordering::SeqCst);
    }

    /// A worker thread exited (normally or by unwinding).
    pub fn worker_stopped(&self) {
        // Saturating decrement: a stray extra call must not wrap to
        // u64::MAX and pin the gate at hold forever.
        let _ = self
            .workers_alive
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |alive| {
                Some(alive.saturating_sub(1))
            });
    }

    /// Enter drain mode: the gate holds until the process exits.
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::SeqCst);
    }

    /// Record one job reaching a terminal state. `failed` drives the
    /// failure streak (`None` — e.g. a cancellation — leaves the streak
    /// untouched); every terminal feeds the drain-rate estimator.
    pub fn record_job_terminal(&self, failed: Option<bool>) {
        self.cycles_seen.fetch_add(1, Ordering::SeqCst);
        match failed {
            Some(true) => {
                self.failure_streak.fetch_add(1, Ordering::SeqCst);
                self.last_cycle_failed.store(true, Ordering::SeqCst);
            }
            Some(false) => {
                self.failure_streak.store(0, Ordering::SeqCst);
                self.last_cycle_failed.store(false, Ordering::SeqCst);
            }
            None => {}
        }
        let mut window = self.completions.lock();
        if window.len() == DRAIN_WINDOW {
            window.pop_front();
        }
        window.push_back(Instant::now());
    }

    // ── admission reads ──────────────────────────────────────────────

    /// Cached verdict from the most recent [`evaluate`](Self::evaluate):
    /// one atomic load, safe on any hot path.
    pub fn verdict(&self) -> Verdict {
        Verdict::from_rank(self.cached.load(Ordering::SeqCst))
    }

    /// Suggested client back-off in whole seconds, derived from the
    /// observed drain rate: how long until the current backlog (plus the
    /// caller's job) has drained. Integer seconds, floor 1, capped at
    /// 60. Returns the floor when no completions have been observed
    /// yet.
    pub fn retry_after_secs(&self) -> u64 {
        let queued = self.queued.load(Ordering::SeqCst);
        let window = self.completions.lock();
        if window.len() < 2 {
            return 1;
        }
        let (first, last) = match (window.front(), window.back()) {
            (Some(f), Some(l)) => (*f, *l),
            _ => return 1,
        };
        let span = last.duration_since(first).as_secs_f64();
        if span <= 0.0 {
            return 1;
        }
        let rate = (window.len() - 1) as f64 / span; // jobs per second
        let secs = ((queued + 1) as f64 / rate).ceil();
        (secs as u64).clamp(1, RETRY_AFTER_MAX_SECS)
    }

    // ── evaluation ───────────────────────────────────────────────────

    /// Fold every signal into a fresh verdict, cache it for admission
    /// reads, update the exposition metrics, and return the full report
    /// with per-signal evidence.
    pub fn evaluate(&self) -> HealthReport {
        let t = &self.thresholds;
        let mut signals: Vec<Signal> = Vec::with_capacity(7);

        // 1. Queue occupancy → queue_backpressure_applied.
        let queued = self.queued.load(Ordering::SeqCst) as f64;
        let capacity = self.queue_capacity.load(Ordering::SeqCst) as f64;
        signals.push(ratio_signal(
            "jobs_queue_depth",
            queued,
            capacity,
            t.queue_degraded_ratio,
            t.queue_hold_ratio,
            "instantaneous",
            ReasonCode::QueueBackpressureApplied,
        ));

        // 2. Per-session backlog → session_backlogged (degraded only:
        //    one noisy tenant is a fairness concern, not an outage).
        let backlog = self.session_backlog_max.load(Ordering::SeqCst) as f64;
        let backlog_threshold = t.session_backlog_ratio * capacity;
        let backlog_verdict = if capacity > 0.0 && backlog >= backlog_threshold && backlog > 0.0 {
            Verdict::Degraded
        } else {
            Verdict::Pass
        };
        signals.push(Signal {
            name: "jobs_session_backlog_max",
            value: backlog,
            threshold: backlog_threshold,
            window: "instantaneous",
            verdict: backlog_verdict,
            reason: non_pass(backlog_verdict, ReasonCode::SessionBacklogged),
        });

        // 3. Last job cycle → retryable_failures_observed (degraded).
        let cycles = self.cycles_seen.load(Ordering::SeqCst);
        let last_failed = cycles > 0 && self.last_cycle_failed.load(Ordering::SeqCst);
        let last_verdict = if last_failed {
            Verdict::Degraded
        } else {
            Verdict::Pass
        };
        signals.push(Signal {
            name: "jobs_last_cycle_failed",
            value: if last_failed { 1.0 } else { 0.0 },
            threshold: 1.0,
            window: "last_terminal_job",
            verdict: last_verdict,
            reason: non_pass(last_verdict, ReasonCode::RetryableFailuresObserved),
        });

        // 4. Failure streak → retryable_failures_observed (hold).
        let streak = self.failure_streak.load(Ordering::SeqCst);
        let streak_verdict = if streak >= t.failure_streak_hold {
            Verdict::Hold
        } else {
            Verdict::Pass
        };
        signals.push(Signal {
            name: "jobs_failure_streak",
            value: streak as f64,
            threshold: t.failure_streak_hold as f64,
            window: "consecutive_terminal_jobs",
            verdict: streak_verdict,
            reason: non_pass(streak_verdict, ReasonCode::RetryableFailuresObserved),
        });

        // 5. Worker pool → worker_pool_degraded (hold: lost workers do
        //    not come back without a restart).
        let alive = self.workers_alive.load(Ordering::SeqCst) as f64;
        let total = self.workers_total.load(Ordering::SeqCst) as f64;
        let workers_verdict = if total > 0.0 && alive < total {
            Verdict::Hold
        } else {
            Verdict::Pass
        };
        signals.push(Signal {
            name: "jobs_workers_alive",
            value: alive,
            threshold: total,
            window: "instantaneous",
            verdict: workers_verdict,
            reason: non_pass(workers_verdict, ReasonCode::WorkerPoolDegraded),
        });

        // 6. Stream lane → stream_lane_saturated.
        let streams = self.streams_active.load(Ordering::SeqCst) as f64;
        let stream_cap = self.streams_capacity.load(Ordering::SeqCst) as f64;
        signals.push(ratio_signal(
            "sse_streams_active",
            streams,
            stream_cap,
            t.stream_degraded_ratio,
            t.stream_hold_ratio,
            "instantaneous",
            ReasonCode::StreamLaneSaturated,
        ));

        // 7. Drain mode → shutdown_in_progress (hold).
        let draining = self.draining.load(Ordering::SeqCst);
        let drain_verdict = if draining {
            Verdict::Hold
        } else {
            Verdict::Pass
        };
        signals.push(Signal {
            name: "service_draining",
            value: if draining { 1.0 } else { 0.0 },
            threshold: 1.0,
            window: "instantaneous",
            verdict: drain_verdict,
            reason: non_pass(drain_verdict, ReasonCode::ShutdownInProgress),
        });

        // Fold by max severity and dedupe reason codes in signal order.
        let mut verdict = Verdict::Pass;
        let mut reasons: Vec<ReasonCode> = Vec::with_capacity(signals.len());
        for s in &signals {
            if s.verdict > verdict {
                verdict = s.verdict;
            }
            if let Some(r) = s.reason {
                if !reasons.contains(&r) {
                    reasons.push(r);
                }
            }
        }

        let previous = Verdict::from_rank(self.cached.swap(verdict.rank(), Ordering::SeqCst));
        if let Some(m) = self.metrics.lock().as_ref() {
            m.verdict.set(verdict.rank() as i64);
            if previous != verdict {
                m.transitions[verdict.rank() as usize].inc();
            }
        }

        HealthReport {
            verdict,
            reasons,
            signals,
            retry_after_secs: self.retry_after_secs(),
        }
    }
}

fn non_pass(verdict: Verdict, reason: ReasonCode) -> Option<ReasonCode> {
    if verdict == Verdict::Pass {
        None
    } else {
        Some(reason)
    }
}

/// Judge a `value / capacity` utilisation against a degraded and a hold
/// ratio. Zero capacity means the resource is unconfigured: pass.
fn ratio_signal(
    name: &'static str,
    value: f64,
    capacity: f64,
    degraded_ratio: f64,
    hold_ratio: f64,
    window: &'static str,
    reason: ReasonCode,
) -> Signal {
    let (verdict, threshold) = if capacity <= 0.0 {
        (Verdict::Pass, degraded_ratio * capacity)
    } else {
        let ratio = value / capacity;
        if ratio >= hold_ratio {
            (Verdict::Hold, hold_ratio * capacity)
        } else if ratio >= degraded_ratio {
            (Verdict::Degraded, degraded_ratio * capacity)
        } else {
            (Verdict::Pass, degraded_ratio * capacity)
        }
    };
    Signal {
        name,
        value,
        threshold,
        window,
        verdict,
        reason: non_pass(verdict, reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn idle_gate_passes() {
        let gate = HealthGate::default();
        let report = gate.evaluate();
        assert_eq!(report.verdict, Verdict::Pass);
        assert!(report.reasons.is_empty(), "{:?}", report.reasons);
        assert_eq!(report.signals.len(), 7);
        assert!(report.signals.iter().all(|s| s.verdict == Verdict::Pass));
        assert_eq!(gate.verdict(), Verdict::Pass);
    }

    #[test]
    fn queue_saturation_walks_the_lattice_and_recovers() {
        let gate = HealthGate::default();
        gate.set_queue(0, 8);
        assert_eq!(gate.evaluate().verdict, Verdict::Pass);

        gate.set_queue(4, 8); // 0.5 ⇒ degraded
        let report = gate.evaluate();
        assert_eq!(report.verdict, Verdict::Degraded);
        assert_eq!(report.reasons, vec![ReasonCode::QueueBackpressureApplied]);

        gate.set_queue(8, 8); // 1.0 ⇒ hold
        let report = gate.evaluate();
        assert_eq!(report.verdict, Verdict::Hold);
        assert!(report
            .reasons
            .contains(&ReasonCode::QueueBackpressureApplied));
        assert_eq!(gate.verdict(), Verdict::Hold);

        gate.set_queue(0, 8); // drained ⇒ pass again
        assert_eq!(gate.evaluate().verdict, Verdict::Pass);
        assert_eq!(gate.verdict(), Verdict::Pass);
    }

    #[test]
    fn evidence_rows_carry_value_threshold_window() {
        let gate = HealthGate::default();
        gate.set_queue(8, 8);
        let report = gate.evaluate();
        let queue = report
            .signals
            .iter()
            .find(|s| s.name == "jobs_queue_depth")
            .expect("queue signal present");
        assert_eq!(queue.value, 8.0);
        assert_eq!(queue.threshold, 8.0); // hold boundary that was crossed
        assert_eq!(queue.window, "instantaneous");
        assert_eq!(queue.verdict, Verdict::Hold);
        assert_eq!(queue.reason, Some(ReasonCode::QueueBackpressureApplied));
    }

    #[test]
    fn stream_lane_saturation_holds() {
        let gate = HealthGate::default();
        gate.set_streams(3, 4); // 0.75 ⇒ degraded
        assert_eq!(gate.evaluate().verdict, Verdict::Degraded);
        gate.set_streams(4, 4); // 1.0 ⇒ hold
        let report = gate.evaluate();
        assert_eq!(report.verdict, Verdict::Hold);
        assert_eq!(report.reasons, vec![ReasonCode::StreamLaneSaturated]);
        gate.set_streams(0, 4);
        assert_eq!(gate.evaluate().verdict, Verdict::Pass);
    }

    #[test]
    fn failure_streak_holds_and_one_success_clears_it() {
        let gate = HealthGate::default();
        for _ in 0..4 {
            gate.record_job_terminal(Some(true));
        }
        // Streak 4 < hold 5, but the last cycle failed ⇒ degraded.
        let report = gate.evaluate();
        assert_eq!(report.verdict, Verdict::Degraded);
        assert_eq!(report.reasons, vec![ReasonCode::RetryableFailuresObserved]);

        gate.record_job_terminal(Some(true)); // streak 5 ⇒ hold
        assert_eq!(gate.evaluate().verdict, Verdict::Hold);

        gate.record_job_terminal(Some(false)); // success resets
        assert_eq!(gate.evaluate().verdict, Verdict::Pass);
    }

    #[test]
    fn cancellations_leave_the_streak_untouched() {
        let gate = HealthGate::default();
        gate.record_job_terminal(Some(true));
        gate.record_job_terminal(None); // cancelled: neutral
        let report = gate.evaluate();
        assert_eq!(report.verdict, Verdict::Degraded); // last *failure* still recent
        let streak = report
            .signals
            .iter()
            .find(|s| s.name == "jobs_failure_streak")
            .expect("streak signal");
        assert_eq!(streak.value, 1.0);
    }

    #[test]
    fn dead_worker_holds_the_gate() {
        let gate = HealthGate::default();
        gate.set_workers_total(2);
        gate.worker_started();
        gate.worker_started();
        assert_eq!(gate.evaluate().verdict, Verdict::Pass);
        gate.worker_stopped();
        let report = gate.evaluate();
        assert_eq!(report.verdict, Verdict::Hold);
        assert_eq!(report.reasons, vec![ReasonCode::WorkerPoolDegraded]);
    }

    #[test]
    fn draining_holds_with_shutdown_reason() {
        let gate = HealthGate::default();
        gate.set_draining(true);
        let report = gate.evaluate();
        assert_eq!(report.verdict, Verdict::Hold);
        assert_eq!(report.reasons, vec![ReasonCode::ShutdownInProgress]);
    }

    #[test]
    fn retry_after_floor_is_one_second() {
        let gate = HealthGate::default();
        assert_eq!(gate.retry_after_secs(), 1); // no completions observed
        gate.record_job_terminal(Some(false));
        assert_eq!(gate.retry_after_secs(), 1); // single sample: still floor
    }

    #[test]
    fn retry_after_tracks_drain_rate_and_caps() {
        let gate = HealthGate::default();
        // Two completions 100ms apart ⇒ ~10 jobs/sec.
        gate.record_job_terminal(Some(false));
        std::thread::sleep(Duration::from_millis(100));
        gate.record_job_terminal(Some(false));
        gate.set_queue(40, 64);
        let secs = gate.retry_after_secs();
        // 41 jobs at ~10/sec ≈ 4–6s depending on scheduler jitter.
        assert!((1..=RETRY_AFTER_MAX_SECS).contains(&secs), "secs = {secs}");
        assert!(secs >= 2, "expected a drain-rate-derived hint, got {secs}");

        gate.set_queue(1_000_000, 1_000_000);
        assert_eq!(gate.retry_after_secs(), RETRY_AFTER_MAX_SECS);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let gate = HealthGate::default();
        gate.set_queue(8, 8);
        let report = gate.evaluate();
        let json = report.to_json();
        assert_eq!(json["verdict"].as_str(), Some("hold"));
        let reasons = json["reasons"].as_array().expect("reasons array");
        assert!(reasons
            .iter()
            .any(|r| r.as_str() == Some("queue_backpressure_applied")));
        let signals = json["signals"].as_array().expect("signals array");
        assert_eq!(signals.len(), 7);
        assert!(signals.iter().all(|s| {
            s["name"].as_str().is_some()
                && s["value"].as_f64().is_some()
                && s["threshold"].as_f64().is_some()
                && s["window"].as_str().is_some()
                && s["verdict"].as_str().is_some()
        }));
        assert!(json["retry_after_secs"].as_u64().is_some());
    }

    #[test]
    fn verdict_metrics_expose_level_and_transitions() {
        let registry = Registry::new();
        let gate = HealthGate::default();
        gate.bind_registry(&registry);
        let exported = registry.to_json();
        assert_eq!(exported["gauges"]["health_verdict"].as_i64(), Some(0));

        gate.set_queue(8, 8);
        gate.evaluate();
        let exported = registry.to_json();
        assert_eq!(exported["gauges"]["health_verdict"].as_i64(), Some(2));
        assert_eq!(
            exported["counters"]["health_transitions_total{to=\"hold\"}"].as_u64(),
            Some(1)
        );

        gate.evaluate(); // steady state: no new transition
        let exported = registry.to_json();
        assert_eq!(
            exported["counters"]["health_transitions_total{to=\"hold\"}"].as_u64(),
            Some(1)
        );

        gate.set_queue(0, 8);
        gate.evaluate();
        let exported = registry.to_json();
        assert_eq!(exported["gauges"]["health_verdict"].as_i64(), Some(0));
        assert_eq!(
            exported["counters"]["health_transitions_total{to=\"pass\"}"].as_u64(),
            Some(1)
        );
    }

    #[test]
    fn worker_stop_without_start_saturates_at_zero() {
        let gate = HealthGate::default();
        gate.worker_stopped();
        gate.set_workers_total(0);
        assert_eq!(gate.evaluate().verdict, Verdict::Pass);
    }
}

//! k-means clustering with k-means++ initialisation.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::distance::euclidean_sq;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids (k rows).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    pub k: usize,
    pub max_iterations: usize,
    /// Convergence threshold on centroid movement (squared distance).
    pub tolerance: f64,
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iterations: 100,
            tolerance: 1e-8,
            seed: 0,
        }
    }
}

/// Lloyd's algorithm with k-means++ seeding. `k` is clamped to the number
/// of rows. Empty clusters are re-seeded with the point farthest from its
/// centroid.
///
/// # Panics
/// On empty input or ragged rows.
pub fn kmeans(data: &[Vec<f64>], config: &KMeansConfig) -> KMeansResult {
    assert!(!data.is_empty(), "cannot cluster empty data");
    let width = data[0].len();
    assert!(data.iter().all(|r| r.len() == width), "ragged rows");
    let k = config.k.max(1).min(data.len());
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut centroids = plus_plus_init(data, k, &mut rng);
    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Assign.
        for (i, row) in data.iter().enumerate() {
            assignments[i] = nearest_centroid(row, &centroids).0;
        }
        // Update.
        let mut sums = vec![vec![0.0; width]; k];
        let mut counts = vec![0usize; k];
        for (i, row) in data.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (d, v) in row.iter().enumerate() {
                sums[assignments[i]][d] += v;
            }
        }
        let mut movement: f64 = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed the empty cluster at the point farthest from its
                // current centroid to avoid dead clusters.
                let (far, _) = data
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = euclidean_sq(a, &centroids[assignments_of(a, &centroids)]);
                        let db = euclidean_sq(b, &centroids[assignments_of(b, &centroids)]);
                        da.total_cmp(&db)
                    })
                    .expect("nonempty data");
                movement += euclidean_sq(&centroids[c], &data[far]);
                centroids[c] = data[far].clone();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += euclidean_sq(&centroids[c], &new);
            centroids[c] = new;
        }
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment + inertia.
    let mut inertia = 0.0;
    for (i, row) in data.iter().enumerate() {
        let (c, d) = nearest_centroid(row, &centroids);
        assignments[i] = c;
        inertia += d;
    }
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

fn assignments_of(row: &[f64], centroids: &[Vec<f64>]) -> usize {
    nearest_centroid(row, centroids).0
}

fn nearest_centroid(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, cen) in centroids.iter().enumerate() {
        let d = euclidean_sq(row, cen);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, the rest sampled with
/// probability proportional to squared distance from the nearest chosen
/// centroid.
fn plus_plus_init(data: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.random_range(0..data.len())].clone());
    let mut dists: Vec<f64> = data
        .iter()
        .map(|row| euclidean_sq(row, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick arbitrary.
            rng.random_range(0..data.len())
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = data.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(data[next].clone());
        for (i, row) in data.iter().enumerate() {
            let d = euclidean_sq(row, centroids.last().expect("just pushed"));
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![center + (i as f64) * 0.01, center - (i as f64) * 0.01])
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut data = blob(0.0, 20);
        data.extend(blob(100.0, 20));
        let res = kmeans(
            &data,
            &KMeansConfig {
                k: 2,
                seed: 42,
                ..KMeansConfig::default()
            },
        );
        let first = res.assignments[0];
        assert!(res.assignments[..20].iter().all(|&a| a == first));
        assert!(res.assignments[20..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_clamped_to_data_len() {
        let data = vec![vec![1.0], vec![2.0]];
        let res = kmeans(
            &data,
            &KMeansConfig {
                k: 10,
                ..KMeansConfig::default()
            },
        );
        assert_eq!(res.centroids.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut data = blob(0.0, 10);
        data.extend(blob(5.0, 10));
        let cfg = KMeansConfig {
            k: 2,
            seed: 7,
            ..KMeansConfig::default()
        };
        let a = kmeans(&data, &cfg);
        let b = kmeans(&data, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn identical_points_zero_inertia() {
        let data = vec![vec![3.0, 3.0]; 8];
        let res = kmeans(
            &data,
            &KMeansConfig {
                k: 3,
                ..KMeansConfig::default()
            },
        );
        assert_eq!(res.inertia, 0.0);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut data = Vec::new();
        for c in 0..4 {
            data.extend(blob(c as f64 * 50.0, 10));
        }
        let i1 = kmeans(
            &data,
            &KMeansConfig {
                k: 1,
                seed: 1,
                ..KMeansConfig::default()
            },
        )
        .inertia;
        let i4 = kmeans(
            &data,
            &KMeansConfig {
                k: 4,
                seed: 1,
                ..KMeansConfig::default()
            },
        )
        .inertia;
        assert!(i4 < i1);
    }
}

//! # datalens-ml
//!
//! Self-contained machine-learning substrate for the DataLens reproduction.
//! The paper's dashboard leans on scikit-learn-style components in four
//! places, all served by this crate:
//!
//! - **ML imputation** (§3): [`tree::DecisionTreeRegressor`] for numeric
//!   columns, [`knn::KnnClassifier`] for categorical columns.
//! - **RAHA** (§3, Figure 3): [`agglomerative`] clustering of detector
//!   signatures, [`labelprop`] label propagation, and per-column
//!   [`tree::DecisionTreeClassifier`]s.
//! - **Statistical outlier detection**: [`isolation_forest`].
//! - **Iterative cleaning** (§4, Figure 5): the downstream decision-tree
//!   model and the [`metrics`] (MSE / F1) that score each trial.
//!
//! Everything operates on finite `f64` feature matrices; [`encode`]
//! converts nullable tables into that form.

pub mod agglomerative;
pub mod distance;
pub mod encode;
pub mod isolation_forest;
pub mod kmeans;
pub mod knn;
pub mod labelprop;
pub mod linear;
pub mod metrics;
pub mod split;
pub mod tree;

pub use encode::{CategoricalEncoding, StandardScaler, TableEncoder};
pub use isolation_forest::{IsolationForest, IsolationForestConfig};
pub use knn::{KnnClassifier, KnnRegressor};
pub use linear::{LogisticConfig, LogisticRegression};
pub use metrics::BinaryConfusion;
pub use split::{k_fold, train_test_split, Split};
pub use tree::{Criterion, DecisionTreeClassifier, DecisionTreeRegressor, TreeConfig};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::metrics::{f1_macro, f1_micro, mse};
    use crate::split::train_test_split;
    use crate::tree::{DecisionTreeRegressor, TreeConfig};

    proptest! {
        /// MSE is zero iff predictions equal targets, and non-negative.
        #[test]
        fn mse_nonnegative_and_faithful(
            y in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            prop_assert!(mse(&y, &y) < 1e-18);
            let shifted: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
            prop_assert!((mse(&y, &shifted) - 1.0).abs() < 1e-9);
        }

        /// F1 scores always land in [0, 1].
        #[test]
        fn f1_bounded(
            t in proptest::collection::vec(0u8..4, 1..60),
            p in proptest::collection::vec(0u8..4, 1..60),
        ) {
            let n = t.len().min(p.len());
            let ts: Vec<String> = t[..n].iter().map(|v| v.to_string()).collect();
            let ps: Vec<String> = p[..n].iter().map(|v| v.to_string()).collect();
            for f in [f1_macro(&ts, &ps), f1_micro(&ts, &ps)] {
                prop_assert!((0.0..=1.0).contains(&f), "f1 {f}");
            }
            prop_assert!((f1_macro(&ts, &ts) - 1.0).abs() < 1e-12);
        }

        /// Splits partition rows, with both sides nonempty for n ≥ 2.
        #[test]
        fn split_partition(n in 2usize..500, frac in 0.01f64..0.99, seed in any::<u64>()) {
            let s = train_test_split(n, frac, seed);
            let mut all = s.train.clone();
            all.extend(&s.test);
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
            prop_assert!(!s.train.is_empty());
            prop_assert!(!s.test.is_empty());
        }

        /// A regressor's training error never exceeds the target variance
        /// (it can always do at least as well as predicting the mean).
        #[test]
        fn tree_beats_mean_baseline(
            y in proptest::collection::vec(-100f64..100.0, 4..40),
        ) {
            let x: Vec<Vec<f64>> = (0..y.len()).map(|i| vec![i as f64]).collect();
            let mut t = DecisionTreeRegressor::new(TreeConfig::default());
            t.fit(&x, &y);
            let preds = t.predict(&x);
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            let baseline: Vec<f64> = vec![mean; y.len()];
            prop_assert!(mse(&y, &preds) <= mse(&y, &baseline) + 1e-9);
        }
    }
}

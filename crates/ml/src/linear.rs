//! Logistic regression via mini-batch SGD (one-vs-rest for multi-class).
//!
//! Not strictly required by the paper's evaluation (the downstream models
//! are trees), but the iterative-cleaning module treats the model family as
//! a hyperparameter, so a second model type exercises that search space.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for [`LogisticRegression`].
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    pub learning_rate: f64,
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            learning_rate: 0.1,
            epochs: 100,
            l2: 1e-4,
            seed: 0,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// One binary logistic model: weights + bias.
#[derive(Debug, Clone)]
struct BinaryModel {
    weights: Vec<f64>,
    bias: f64,
}

impl BinaryModel {
    fn train(x: &[Vec<f64>], y: &[f64], config: &LogisticConfig, rng: &mut StdRng) -> BinaryModel {
        let width = x[0].len();
        let mut w = vec![0.0; width];
        let mut b = 0.0;
        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(rng);
            for &i in &order {
                let z = x[i].iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + b;
                let err = sigmoid(z) - y[i];
                for (d, v) in x[i].iter().enumerate() {
                    w[d] -= config.learning_rate * (err * v + config.l2 * w[d]);
                }
                b -= config.learning_rate * err;
            }
        }
        BinaryModel {
            weights: w,
            bias: b,
        }
    }

    fn score(&self, x: &[f64]) -> f64 {
        sigmoid(x.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>() + self.bias)
    }
}

/// Multi-class logistic regression classifier (one-vs-rest).
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    config: LogisticConfig,
    classes: Vec<String>,
    models: Vec<BinaryModel>,
}

impl LogisticRegression {
    pub fn new(config: LogisticConfig) -> Self {
        LogisticRegression {
            config,
            classes: Vec::new(),
            models: Vec::new(),
        }
    }

    /// Fit on finite features; callers should standardise features first
    /// (see [`crate::encode::StandardScaler`]) for sane convergence.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[String]) {
        assert!(!x.is_empty(), "cannot fit on empty data");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let mut classes: Vec<String> = y.to_vec();
        classes.sort();
        classes.dedup();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.models = classes
            .iter()
            .map(|c| {
                let targets: Vec<f64> = y.iter().map(|l| f64::from(u8::from(l == c))).collect();
                BinaryModel::train(x, &targets, &self.config, &mut rng)
            })
            .collect();
        self.classes = classes;
    }

    /// Predict the argmax class per row.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<String> {
        assert!(!self.models.is_empty(), "classifier not fitted");
        x.iter()
            .map(|row| {
                let best = self
                    .models
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.score(row).total_cmp(&b.score(row)))
                    .expect("at least one class");
                self.classes[best.0].clone()
            })
            .collect()
    }

    /// Per-class probabilities (one-vs-rest scores, normalised).
    pub fn predict_proba(&self, x: &[f64]) -> Vec<(String, f64)> {
        assert!(!self.models.is_empty(), "classifier not fitted");
        let raw: Vec<f64> = self.models.iter().map(|m| m.score(x)).collect();
        let total: f64 = raw.iter().sum();
        self.classes
            .iter()
            .zip(&raw)
            .map(|(c, &s)| (c.clone(), if total > 0.0 { s / total } else { 0.0 }))
            .collect()
    }

    pub fn classes(&self) -> &[String] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn separates_linearly_separable_classes() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            x.push(vec![-1.0 - (i as f64) * 0.01, 0.0]);
            y.push("neg".to_string());
            x.push(vec![1.0 + (i as f64) * 0.01, 0.0]);
            y.push("pos".to_string());
        }
        let mut m = LogisticRegression::new(LogisticConfig::default());
        m.fit(&x, &y);
        assert_eq!(accuracy(&y, &m.predict(&x)), 1.0);
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let jitter = (i as f64) * 0.001;
            x.push(vec![0.0 + jitter, 5.0]);
            y.push("top".to_string());
            x.push(vec![-5.0 + jitter, -5.0]);
            y.push("left".to_string());
            x.push(vec![5.0 + jitter, -5.0]);
            y.push("right".to_string());
        }
        let mut m = LogisticRegression::new(LogisticConfig::default());
        m.fit(&x, &y);
        let acc = accuracy(&y, &m.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(m.classes().len(), 3);
    }

    #[test]
    fn proba_sums_to_one() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = labels(&["a", "b"]);
        let mut m = LogisticRegression::new(LogisticConfig::default());
        m.fit(&x, &y);
        let p = m.predict_proba(&[0.5]);
        let total: f64 = p.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 10.0 - 1.0]).collect();
        let y: Vec<String> = (0..20)
            .map(|i| if i < 10 { "a".into() } else { "b".into() })
            .collect();
        let mut m1 = LogisticRegression::new(LogisticConfig::default());
        let mut m2 = LogisticRegression::new(LogisticConfig::default());
        m1.fit(&x, &y);
        m2.fit(&x, &y);
        assert_eq!(m1.predict(&x), m2.predict(&x));
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}

//! Distance functions over feature vectors.

/// Squared Euclidean distance (cheaper when only ordering matters).
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Manhattan (L1) distance.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Cosine distance (1 − cosine similarity); 0 for identical directions.
/// Zero vectors have distance 1 from everything (including each other).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na * nb)
}

/// Hamming distance as a fraction of differing coordinates, useful for
/// binary feature vectors such as RAHA's detector-signature vectors.
pub fn hamming_frac(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
    diff as f64 / a.len() as f64
}

/// Gower-style mixed distance: per-coordinate, numeric dims contribute a
/// range-normalised absolute difference, categorical dims (flagged in
/// `is_categorical`) contribute 0/1 mismatch. `ranges[i]` is the observed
/// max−min of numeric dim `i` (0 ⇒ the dim is constant and contributes 0).
pub fn gower(a: &[f64], b: &[f64], is_categorical: &[bool], ranges: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), is_categorical.len());
    debug_assert_eq!(a.len(), ranges.len());
    if a.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..a.len() {
        total += if is_categorical[i] {
            if a[i] == b[i] {
                0.0
            } else {
                1.0
            }
        } else if ranges[i] > 0.0 {
            ((a[i] - b[i]).abs() / ranges[i]).min(1.0)
        } else {
            0.0
        };
    }
    total / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_basics() {
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }

    #[test]
    fn cosine_identical_and_orthogonal() {
        assert!(cosine(&[1.0, 0.0], &[2.0, 0.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn hamming_fraction() {
        assert_eq!(
            hamming_frac(&[1.0, 0.0, 1.0, 0.0], &[1.0, 1.0, 1.0, 1.0]),
            0.5
        );
        assert_eq!(hamming_frac(&[], &[]), 0.0);
    }

    #[test]
    fn gower_mixes_numeric_and_categorical() {
        // dim0 numeric with range 10, dim1 categorical.
        let d = gower(&[0.0, 1.0], &[5.0, 2.0], &[false, true], &[10.0, 0.0]);
        // (0.5 + 1.0) / 2
        assert!((d - 0.75).abs() < 1e-12);
        // Constant numeric dim contributes zero.
        let d = gower(&[3.0], &[9.0], &[false], &[0.0]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn gower_clamps_out_of_range_diffs() {
        let d = gower(&[0.0], &[100.0], &[false], &[10.0]);
        assert_eq!(d, 1.0);
    }
}

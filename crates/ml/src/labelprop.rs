//! Label propagation over cluster structures.
//!
//! RAHA's key trick: a user label on one cell propagates to every cell in
//! the same (homogeneous) cluster, multiplying the effective training set.
//! This module implements that cluster-level propagation plus a graph-based
//! variant over k-NN similarity for the extension benches.

use std::collections::HashMap;

/// A (possibly missing) binary label: `Some(true)` = dirty, `Some(false)` =
/// clean, `None` = unlabeled.
pub type PartialLabels = Vec<Option<bool>>;

/// Propagate labels within clusters: every unlabeled member of a cluster
/// receives the cluster's majority label (ties → stays unlabeled). Items in
/// clusters with no labeled member remain unlabeled.
///
/// Returns the propagated labels plus the count of newly labeled items.
pub fn propagate_in_clusters(
    assignments: &[usize],
    labels: &PartialLabels,
) -> (PartialLabels, usize) {
    assert_eq!(assignments.len(), labels.len(), "length mismatch");
    let mut tally: HashMap<usize, (usize, usize)> = HashMap::new(); // cluster -> (dirty, clean)
    for (i, lab) in labels.iter().enumerate() {
        if let Some(l) = lab {
            let e = tally.entry(assignments[i]).or_insert((0, 0));
            if *l {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    let mut out = labels.clone();
    let mut newly = 0usize;
    for (i, lab) in labels.iter().enumerate() {
        if lab.is_some() {
            continue;
        }
        if let Some(&(dirty, clean)) = tally.get(&assignments[i]) {
            if dirty != clean {
                out[i] = Some(dirty > clean);
                newly += 1;
            }
        }
    }
    (out, newly)
}

/// Graph label propagation: iteratively assign each unlabeled node the
/// weighted majority label of its neighbours until a fixed point (or
/// `max_rounds`). `edges[i]` lists `(neighbour, weight)` pairs.
pub fn propagate_on_graph(
    edges: &[Vec<(usize, f64)>],
    labels: &PartialLabels,
    max_rounds: usize,
) -> PartialLabels {
    assert_eq!(edges.len(), labels.len(), "length mismatch");
    let mut current = labels.clone();
    for _ in 0..max_rounds {
        let mut changed = false;
        let mut next = current.clone();
        for i in 0..edges.len() {
            if labels[i].is_some() {
                continue; // seed labels are clamped
            }
            let mut dirty_w = 0.0;
            let mut clean_w = 0.0;
            for &(j, w) in &edges[i] {
                match current[j] {
                    Some(true) => dirty_w += w,
                    Some(false) => clean_w += w,
                    None => {}
                }
            }
            let new = if dirty_w > clean_w {
                Some(true)
            } else if clean_w > dirty_w {
                Some(false)
            } else {
                current[i]
            };
            if new != current[i] {
                next[i] = new;
                changed = true;
            }
        }
        current = next;
        if !changed {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_propagation_fills_majority() {
        let assignments = vec![0, 0, 0, 1, 1];
        let labels = vec![Some(true), None, None, Some(false), None];
        let (out, newly) = propagate_in_clusters(&assignments, &labels);
        assert_eq!(
            out,
            vec![Some(true), Some(true), Some(true), Some(false), Some(false)]
        );
        assert_eq!(newly, 3);
    }

    #[test]
    fn tie_leaves_unlabeled() {
        let assignments = vec![0, 0, 0];
        let labels = vec![Some(true), Some(false), None];
        let (out, newly) = propagate_in_clusters(&assignments, &labels);
        assert_eq!(out[2], None);
        assert_eq!(newly, 0);
    }

    #[test]
    fn unlabeled_cluster_untouched() {
        let assignments = vec![0, 1];
        let labels = vec![Some(true), None];
        let (out, _) = propagate_in_clusters(&assignments, &labels);
        assert_eq!(out[1], None);
    }

    #[test]
    fn existing_labels_never_overwritten() {
        let assignments = vec![0, 0, 0];
        let labels = vec![Some(true), Some(true), Some(false)];
        let (out, newly) = propagate_in_clusters(&assignments, &labels);
        assert_eq!(out, labels);
        assert_eq!(newly, 0);
    }

    #[test]
    fn graph_propagation_reaches_chain_end() {
        // 0 -- 1 -- 2 -- 3, seed label at node 0.
        let edges = vec![
            vec![(1, 1.0)],
            vec![(0, 1.0), (2, 1.0)],
            vec![(1, 1.0), (3, 1.0)],
            vec![(2, 1.0)],
        ];
        let labels = vec![Some(true), None, None, None];
        let out = propagate_on_graph(&edges, &labels, 10);
        assert_eq!(out, vec![Some(true); 4]);
    }

    #[test]
    fn graph_propagation_respects_weights() {
        // Node 2 is pulled by a strong clean neighbour and a weak dirty one.
        let edges = vec![vec![], vec![], vec![(0, 0.2), (1, 5.0)]];
        let labels = vec![Some(true), Some(false), None];
        let out = propagate_on_graph(&edges, &labels, 5);
        assert_eq!(out[2], Some(false));
    }

    #[test]
    fn graph_seed_labels_clamped() {
        let edges = vec![vec![(1, 10.0)], vec![(0, 10.0)]];
        let labels = vec![Some(true), Some(false)];
        let out = propagate_on_graph(&edges, &labels, 5);
        assert_eq!(out, labels);
    }
}

//! Encoders: turning tables with nulls into finite feature matrices.
//!
//! Every model in this crate requires finite `f64` features. The encoders
//! here own the messy part: ordinal/one-hot encoding of categoricals
//! (missing values become their own category), mean-filling of numeric
//! nulls, and standard scaling.

use std::collections::HashMap;

use datalens_table::{Column, DataType, Table};

/// Ordinal encoder for one categorical column: category → dense id.
///
/// Ids are assigned in sorted category order so encodings are independent
/// of row order. Unknown categories at transform time map to `-1.0`;
/// nulls map to the reserved id `n_categories as f64` ("missing" bucket).
#[derive(Debug, Clone, Default)]
pub struct OrdinalEncoder {
    mapping: HashMap<String, usize>,
}

impl OrdinalEncoder {
    /// Learn the category set from rendered (non-null) values.
    pub fn fit(values: &[Option<String>]) -> OrdinalEncoder {
        let mut cats: Vec<&String> = values.iter().flatten().collect();
        cats.sort();
        cats.dedup();
        let mapping = cats
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        OrdinalEncoder { mapping }
    }

    pub fn n_categories(&self) -> usize {
        self.mapping.len()
    }

    /// Encode one value. Null → missing bucket, unseen → −1.
    pub fn encode(&self, value: Option<&str>) -> f64 {
        match value {
            None => self.mapping.len() as f64,
            Some(v) => self.mapping.get(v).map_or(-1.0, |&id| id as f64),
        }
    }

    /// Inverse lookup of a dense id back to its category.
    pub fn decode(&self, id: f64) -> Option<&str> {
        let id = id as usize;
        self.mapping
            .iter()
            .find(|(_, &v)| v == id)
            .map(|(k, _)| k.as_str())
    }
}

/// One-hot encoder for one categorical column.
///
/// Produces `n_categories` indicator dims; nulls and unseen categories
/// encode as the all-zero vector.
#[derive(Debug, Clone, Default)]
pub struct OneHotEncoder {
    categories: Vec<String>,
    index: HashMap<String, usize>,
}

impl OneHotEncoder {
    pub fn fit(values: &[Option<String>]) -> OneHotEncoder {
        let mut cats: Vec<String> = values.iter().flatten().cloned().collect();
        cats.sort();
        cats.dedup();
        let index = cats
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        OneHotEncoder {
            categories: cats,
            index,
        }
    }

    pub fn width(&self) -> usize {
        self.categories.len()
    }

    pub fn encode(&self, value: Option<&str>) -> Vec<f64> {
        let mut out = vec![0.0; self.categories.len()];
        if let Some(v) = value {
            if let Some(&i) = self.index.get(v) {
                out[i] = 1.0;
            }
        }
        out
    }

    pub fn categories(&self) -> &[String] {
        &self.categories
    }
}

/// Standard scaler: per-dim zero mean, unit variance (constant dims are
/// left centred but unscaled).
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    pub fn fit(data: &[Vec<f64>]) -> StandardScaler {
        assert!(!data.is_empty(), "cannot fit scaler on empty data");
        let width = data[0].len();
        let n = data.len() as f64;
        let mut means = vec![0.0; width];
        for row in data {
            for (d, v) in row.iter().enumerate() {
                means[d] += v;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut stds = vec![0.0; width];
        for row in data {
            for (d, v) in row.iter().enumerate() {
                stds[d] += (v - means[d]) * (v - means[d]);
            }
        }
        stds.iter_mut().for_each(|s| *s = (*s / n).sqrt());
        StandardScaler { means, stds }
    }

    pub fn transform(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(d, v)| {
                        if self.stds[d] > 0.0 {
                            (v - self.means[d]) / self.stds[d]
                        } else {
                            v - self.means[d]
                        }
                    })
                    .collect()
            })
            .collect()
    }

    pub fn fit_transform(data: &[Vec<f64>]) -> (StandardScaler, Vec<Vec<f64>>) {
        let s = StandardScaler::fit(data);
        let t = s.transform(data);
        (s, t)
    }
}

/// How a [`TableEncoder`] treats categorical columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoricalEncoding {
    Ordinal,
    OneHot,
}

/// Fitted per-column encoding state for a whole table.
#[derive(Debug, Clone)]
enum ColumnEncoding {
    /// Numeric column: nulls fill with the fitted mean.
    Numeric {
        fill: f64,
    },
    Ordinal(OrdinalEncoder),
    OneHot(OneHotEncoder),
}

/// Encodes a [`Table`] (minus excluded columns) into a finite feature
/// matrix: numeric columns mean-fill nulls, categoricals encode per the
/// chosen strategy with missing as its own signal.
#[derive(Debug, Clone)]
pub struct TableEncoder {
    encodings: Vec<(usize, ColumnEncoding)>,
}

impl TableEncoder {
    /// Fit on `table`, skipping the columns named in `exclude` (typically
    /// the target column).
    pub fn fit(table: &Table, exclude: &[&str], strategy: CategoricalEncoding) -> TableEncoder {
        let mut encodings = Vec::new();
        for (idx, col) in table.columns().iter().enumerate() {
            if exclude.contains(&col.name()) {
                continue;
            }
            let enc = match col.dtype() {
                DataType::Int | DataType::Float | DataType::Bool => {
                    let vals = col.numeric_values();
                    let fill = if vals.is_empty() {
                        0.0
                    } else {
                        vals.iter().sum::<f64>() / vals.len() as f64
                    };
                    ColumnEncoding::Numeric { fill }
                }
                DataType::Str => {
                    let rendered: Vec<Option<String>> =
                        col.iter().map(|v| v.as_str().map(str::to_string)).collect();
                    match strategy {
                        CategoricalEncoding::Ordinal => {
                            ColumnEncoding::Ordinal(OrdinalEncoder::fit(&rendered))
                        }
                        CategoricalEncoding::OneHot => {
                            ColumnEncoding::OneHot(OneHotEncoder::fit(&rendered))
                        }
                    }
                }
            };
            encodings.push((idx, enc));
        }
        TableEncoder { encodings }
    }

    /// Encode all rows of `table` (same schema as the fitted table).
    pub fn transform(&self, table: &Table) -> Vec<Vec<f64>> {
        (0..table.n_rows())
            .map(|r| self.encode_row(table, r))
            .collect()
    }

    /// Encode a single row.
    pub fn encode_row(&self, table: &Table, row: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for (idx, enc) in &self.encodings {
            let col = table.column(*idx).expect("fitted column exists");
            match enc {
                ColumnEncoding::Numeric { fill } => {
                    out.push(col.get(row).as_f64().unwrap_or(*fill));
                }
                ColumnEncoding::Ordinal(e) => {
                    let v = col.get(row);
                    out.push(e.encode(v.as_str()));
                }
                ColumnEncoding::OneHot(e) => {
                    let v = col.get(row);
                    out.extend(e.encode(v.as_str()));
                }
            }
        }
        out
    }

    /// Total encoded width.
    pub fn width(&self) -> usize {
        self.encodings
            .iter()
            .map(|(_, e)| match e {
                ColumnEncoding::Numeric { .. } | ColumnEncoding::Ordinal(_) => 1,
                ColumnEncoding::OneHot(e) => e.width(),
            })
            .sum()
    }
}

/// Extract a regression target: non-null numeric rows of `column`.
/// Returns `(row_indices, targets)`.
pub fn regression_target(column: &Column) -> (Vec<usize>, Vec<f64>) {
    let entries = column.numeric_entries();
    let rows = entries.iter().map(|(r, _)| *r).collect();
    let vals = entries.iter().map(|(_, v)| *v).collect();
    (rows, vals)
}

/// Extract a classification target: non-null rows of `column`, labels as
/// rendered strings. Returns `(row_indices, labels)`.
pub fn classification_target(column: &Column) -> (Vec<usize>, Vec<String>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (r, v) in column.iter().enumerate() {
        if !v.is_null() {
            rows.push(r);
            labels.push(v.render());
        }
    }
    (rows, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_f64("num", [Some(1.0), None, Some(3.0)]),
                Column::from_str_vals("cat", [Some("x"), Some("y"), None]),
                Column::from_i64("target", [Some(10), Some(20), Some(30)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ordinal_encoder_sorted_stable() {
        let e = OrdinalEncoder::fit(&[Some("b".into()), Some("a".into()), Some("b".into()), None]);
        assert_eq!(e.n_categories(), 2);
        assert_eq!(e.encode(Some("a")), 0.0);
        assert_eq!(e.encode(Some("b")), 1.0);
        assert_eq!(e.encode(None), 2.0); // missing bucket
        assert_eq!(e.encode(Some("zz")), -1.0); // unseen
        assert_eq!(e.decode(1.0), Some("b"));
    }

    #[test]
    fn onehot_encoder_width_and_zero_vector() {
        let e = OneHotEncoder::fit(&[Some("p".into()), Some("q".into())]);
        assert_eq!(e.width(), 2);
        assert_eq!(e.encode(Some("q")), vec![0.0, 1.0]);
        assert_eq!(e.encode(None), vec![0.0, 0.0]);
        assert_eq!(e.encode(Some("zz")), vec![0.0, 0.0]);
    }

    #[test]
    fn scaler_zero_mean_unit_variance() {
        let data = vec![vec![1.0, 5.0], vec![3.0, 5.0]];
        let (_, t) = StandardScaler::fit_transform(&data);
        assert!((t[0][0] + 1.0).abs() < 1e-12);
        assert!((t[1][0] - 1.0).abs() < 1e-12);
        // Constant dim: centred, not scaled.
        assert_eq!(t[0][1], 0.0);
        assert_eq!(t[1][1], 0.0);
    }

    #[test]
    fn table_encoder_fills_and_excludes() {
        let t = table();
        let enc = TableEncoder::fit(&t, &["target"], CategoricalEncoding::Ordinal);
        let m = enc.transform(&t);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].len(), 2);
        assert_eq!(enc.width(), 2);
        // Null numeric filled with mean of (1, 3) = 2.
        assert_eq!(m[1][0], 2.0);
        // Null categorical gets the missing bucket id (= 2 categories).
        assert_eq!(m[2][1], 2.0);
        // All finite.
        assert!(m.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn table_encoder_onehot_widens() {
        let t = table();
        let enc = TableEncoder::fit(&t, &["target"], CategoricalEncoding::OneHot);
        assert_eq!(enc.width(), 3); // 1 numeric + 2 one-hot dims
        let m = enc.transform(&t);
        assert_eq!(m[0], vec![1.0, 1.0, 0.0]);
        assert_eq!(m[2], vec![3.0, 0.0, 0.0]);
    }

    #[test]
    fn target_extractors_skip_nulls() {
        let c = Column::from_f64("y", [Some(1.0), None, Some(2.0)]);
        let (rows, vals) = regression_target(&c);
        assert_eq!(rows, vec![0, 2]);
        assert_eq!(vals, vec![1.0, 2.0]);
        let c = Column::from_str_vals("y", [Some("a"), None, Some("b")]);
        let (rows, labels) = classification_target(&c);
        assert_eq!(rows, vec![0, 2]);
        assert_eq!(labels, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn classification_target_renders_numerics() {
        let c = Column::from_i64("y", [Some(1), Some(2)]);
        let (_, labels) = classification_target(&c);
        assert_eq!(labels, vec!["1".to_string(), "2".to_string()]);
    }
}

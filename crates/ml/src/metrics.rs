//! Evaluation metrics for classification and regression.
//!
//! These implement the scoring functions §4 of the paper uses for the
//! iterative-cleaning objective: MSE for regression and F1 for
//! classification, plus the precision/recall machinery the error-detection
//! evaluation (Figure 3) reports.

use std::collections::BTreeMap;

/// Mean squared error. Returns `NaN` on empty input.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Coefficient of determination R². A constant-true-vector edge case
/// returns 0.0 when predictions are imperfect, 1.0 when perfect.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Fraction of exact label matches.
pub fn accuracy<L: PartialEq>(y_true: &[L], y_pred: &[L]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    let hits = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    hits as f64 / y_true.len() as f64
}

/// Binary confusion counts for a designated positive label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinaryConfusion {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Count TP/FP/TN/FN treating `positive` as the positive class.
    pub fn from_labels<L: PartialEq>(y_true: &[L], y_pred: &[L], positive: &L) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        let mut c = BinaryConfusion::default();
        for (t, p) in y_true.iter().zip(y_pred) {
            match (t == positive, p == positive) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (true, false) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Build from raw counts (used by detection evaluation where the
    /// "labels" are cell sets, not vectors).
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        BinaryConfusion { tp, fp, fn_, tn: 0 }
    }

    /// Precision = TP / (TP + FP); 0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = TP / (TP + FN); 0 when no positives exist.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 = harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Per-class F1 averaged with equal class weight ("macro"), over the union
/// of classes present in either vector. Labels are strings to keep the API
/// type-agnostic at the dashboard boundary.
pub fn f1_macro(y_true: &[String], y_pred: &[String]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    let mut classes: Vec<&String> = y_true.iter().chain(y_pred.iter()).collect();
    classes.sort();
    classes.dedup();
    let sum: f64 = classes
        .iter()
        .map(|c| BinaryConfusion::from_labels(y_true, y_pred, c).f1())
        .sum();
    sum / classes.len() as f64
}

/// Micro-averaged F1: global TP/FP/FN pooled over classes. For single-label
/// multi-class problems this equals accuracy.
pub fn f1_micro(y_true: &[String], y_pred: &[String]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    let mut classes: Vec<&String> = y_true.iter().chain(y_pred.iter()).collect();
    classes.sort();
    classes.dedup();
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for c in classes {
        let conf = BinaryConfusion::from_labels(y_true, y_pred, c);
        tp += conf.tp;
        fp += conf.fp;
        fn_ += conf.fn_;
    }
    BinaryConfusion::from_counts(tp, fp, fn_).f1()
}

/// Full confusion matrix keyed by `(true label, predicted label)`.
pub fn confusion_matrix(y_true: &[String], y_pred: &[String]) -> BTreeMap<(String, String), usize> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut m = BTreeMap::new();
    for (t, p) in y_true.iter().zip(y_pred) {
        *m.entry((t.clone(), p.clone())).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn mse_rmse_mae() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((mse(&t, &p) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        assert!(mse(&[], &[]).is_nan());
    }

    #[test]
    fn r2_perfect_and_baseline() {
        let t = [1.0, 2.0, 3.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r2(&t, &mean_pred).abs() < 1e-12);
        // Constant target edge case.
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&[5.0, 5.0], &[4.0, 5.0]), 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 9, 3]), 2.0 / 3.0);
    }

    #[test]
    fn binary_confusion_and_f1() {
        let t = s(&["p", "p", "n", "n", "p"]);
        let p = s(&["p", "n", "p", "n", "p"]);
        let c = BinaryConfusion::from_labels(&t, &p, &"p".to_string());
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 1, 1, 1));
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_zero_when_nothing_predicted() {
        let c = BinaryConfusion::from_counts(0, 0, 5);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn macro_f1_weights_classes_equally() {
        let t = s(&["a", "a", "a", "b"]);
        let p = s(&["a", "a", "a", "a"]);
        // class a: P=3/4, R=1, F1=6/7; class b: F1=0 → macro=3/7
        assert!((f1_macro(&t, &p) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn micro_f1_equals_accuracy_for_single_label() {
        let t = s(&["a", "b", "c", "a"]);
        let p = s(&["a", "b", "a", "a"]);
        assert!((f1_micro(&t, &p) - accuracy(&t, &p)).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_counts() {
        let t = s(&["x", "x", "y"]);
        let p = s(&["x", "y", "y"]);
        let m = confusion_matrix(&t, &p);
        assert_eq!(m[&("x".to_string(), "x".to_string())], 1);
        assert_eq!(m[&("x".to_string(), "y".to_string())], 1);
        assert_eq!(m[&("y".to_string(), "y".to_string())], 1);
    }

    #[test]
    fn perfect_macro_f1_is_one() {
        let t = s(&["a", "b", "c"]);
        assert!((f1_macro(&t, &t) - 1.0).abs() < 1e-12);
    }
}

//! CART decision trees (classification and regression).
//!
//! Used three ways in the reproduction, matching the paper: as the ML
//! imputer for numerical columns (§3 "Automated Data Repair"), as the
//! per-column error classifier inside RAHA, and as the downstream model
//! whose MSE/F1 drives iterative cleaning (Figure 5).
//!
//! Features must be finite (`f64`, no NaN); the [`crate::encode`] module is
//! responsible for turning tables with nulls into finite matrices.

// Index-based loops here mirror the published algorithms' notation;
// iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

/// Hyperparameters shared by classifier and regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum number of samples in each leaf a split may produce.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

/// A fitted tree node.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class id (classifier) — unused by the regressor.
        class: usize,
        /// Mean target (regressor) — also the class probability proxy.
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> (usize, f64) {
        match self {
            Node::Leaf { class, value } => (*class, *value),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }
}

/// The criterion a node minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Criterion {
    /// Gini impurity (classification).
    Gini,
    /// Shannon entropy (classification).
    Entropy,
    /// Within-node variance (regression).
    Variance,
}

/// Best split found for a node, if any.
struct BestSplit {
    feature: usize,
    threshold: f64,
    score: f64,
}

fn class_counts(rows: &[usize], y: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &r in rows {
        counts[y[r]] += 1;
    }
    counts
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Classification splitter: finds the (feature, threshold) minimising the
/// weighted Gini/entropy of the children. Incremental left/right class
/// counts make each feature an O(n log n) sorted sweep.
fn find_best_split_classification(
    x: &[Vec<f64>],
    rows: &[usize],
    config: &TreeConfig,
    y: &[usize],
    n_classes: usize,
    criterion: Criterion,
) -> Option<BestSplit> {
    let n_features = x.first().map_or(0, Vec::len);
    let n = rows.len();
    let total_counts = class_counts(rows, y, n_classes);
    let impurity = |counts: &[usize], total: usize| match criterion {
        Criterion::Gini => gini(counts, total),
        Criterion::Entropy => entropy(counts, total),
        Criterion::Variance => unreachable!("classification splitter"),
    };
    let mut best: Option<BestSplit> = None;
    let mut order: Vec<usize> = rows.to_vec();
    let mut left_counts = vec![0usize; n_classes];
    for f in 0..n_features {
        order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
        left_counts.iter_mut().for_each(|c| *c = 0);
        let mut right_counts = total_counts.clone();
        for i in 1..n {
            let r = order[i - 1];
            left_counts[y[r]] += 1;
            right_counts[y[r]] -= 1;
            if i < config.min_samples_leaf || n - i < config.min_samples_leaf {
                continue;
            }
            let lo = x[order[i - 1]][f];
            let hi = x[order[i]][f];
            if lo == hi {
                continue;
            }
            let score = (i as f64 / n as f64) * impurity(&left_counts, i)
                + ((n - i) as f64 / n as f64) * impurity(&right_counts, n - i);
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(BestSplit {
                    feature: f,
                    threshold: lo + (hi - lo) / 2.0,
                    score,
                });
            }
        }
    }
    best
}

/// Regression splitter: minimises weighted child variance via running
/// sums/sum-of-squares — O(n log n) per feature.
fn find_best_split_regression(
    x: &[Vec<f64>],
    rows: &[usize],
    config: &TreeConfig,
    y: &[f64],
) -> Option<BestSplit> {
    let n_features = x.first().map_or(0, Vec::len);
    let n = rows.len();
    let total_sum: f64 = rows.iter().map(|&r| y[r]).sum();
    let total_sq: f64 = rows.iter().map(|&r| y[r] * y[r]).sum();
    let mut best: Option<BestSplit> = None;
    let mut order: Vec<usize> = rows.to_vec();
    for f in 0..n_features {
        order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for i in 1..n {
            let v = y[order[i - 1]];
            left_sum += v;
            left_sq += v * v;
            if i < config.min_samples_leaf || n - i < config.min_samples_leaf {
                continue;
            }
            let lo = x[order[i - 1]][f];
            let hi = x[order[i]][f];
            if lo == hi {
                continue;
            }
            let nl = i as f64;
            let nr = (n - i) as f64;
            // var = E[y²] − E[y]²; clamp tiny negatives from rounding.
            let var_l = (left_sq / nl - (left_sum / nl).powi(2)).max(0.0);
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let var_r = (right_sq / nr - (right_sum / nr).powi(2)).max(0.0);
            let score = (nl / n as f64) * var_l + (nr / n as f64) * var_r;
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(BestSplit {
                    feature: f,
                    threshold: lo + (hi - lo) / 2.0,
                    score,
                });
            }
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

/// Decision-tree classifier over string labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeClassifier {
    config: TreeConfig,
    criterion: Criterion,
    root: Option<Node>,
    classes: Vec<String>,
}

impl DecisionTreeClassifier {
    pub fn new(config: TreeConfig, criterion: Criterion) -> Self {
        assert!(
            matches!(criterion, Criterion::Gini | Criterion::Entropy),
            "classification requires Gini or Entropy"
        );
        DecisionTreeClassifier {
            config,
            criterion,
            root: None,
            classes: Vec::new(),
        }
    }

    /// Distinct labels seen during fitting, in id order.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Fit on rows `x` (finite features) and labels `y`.
    ///
    /// # Panics
    /// On empty input, ragged feature rows, or non-finite features.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[String]) {
        validate_features(x, y.len());
        // Map labels to dense ids.
        let mut classes: Vec<String> = y.to_vec();
        classes.sort();
        classes.dedup();
        let class_id = |label: &String| classes.binary_search(label).expect("label in classes");
        let y_ids: Vec<usize> = y.iter().map(class_id).collect();
        self.classes = classes;

        let rows: Vec<usize> = (0..y.len()).collect();
        let root = self.build(x, &y_ids, &rows, 0);
        self.root = Some(root);
    }

    fn node_impurity(&self, counts: &[usize], total: usize) -> f64 {
        match self.criterion {
            Criterion::Gini => gini(counts, total),
            Criterion::Entropy => entropy(counts, total),
            Criterion::Variance => unreachable!("validated in constructor"),
        }
    }

    fn leaf(&self, y: &[usize], rows: &[usize]) -> Node {
        let counts = class_counts(rows, y, self.classes.len());
        let class = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let value = counts[class] as f64 / rows.len().max(1) as f64;
        Node::Leaf { class, value }
    }

    fn build(&self, x: &[Vec<f64>], y: &[usize], rows: &[usize], depth: usize) -> Node {
        let counts = class_counts(rows, y, self.classes.len());
        let impure = self.node_impurity(&counts, rows.len());
        if depth >= self.config.max_depth
            || rows.len() < self.config.min_samples_split
            || impure == 0.0
        {
            return self.leaf(y, rows);
        }
        let split = find_best_split_classification(
            x,
            rows,
            &self.config,
            y,
            self.classes.len(),
            self.criterion,
        );
        let Some(split) = split else {
            return self.leaf(y, rows);
        };
        if split.score > impure {
            // Weighted child impurity can only tie the parent, never beat
            // it upward; a worse score means numerical trouble — stop.
            // Zero-gain splits are allowed deliberately: XOR-style targets
            // need them (the first split pays off a level deeper).
            return self.leaf(y, rows);
        }
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&r| x[r][split.feature] <= split.threshold);
        Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: Box::new(self.build(x, y, &left_rows, depth + 1)),
            right: Box::new(self.build(x, y, &right_rows, depth + 1)),
        }
    }

    /// Predict a label for each feature row.
    ///
    /// # Panics
    /// If called before `fit`.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<String> {
        let root = self.root.as_ref().expect("classifier not fitted");
        x.iter()
            .map(|row| self.classes[root.predict(row).0].clone())
            .collect()
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        self.root.as_ref().map_or(0, Node::depth)
    }

    /// Leaf count of the fitted tree.
    pub fn n_leaves(&self) -> usize {
        self.root.as_ref().map_or(0, Node::n_leaves)
    }
}

// ---------------------------------------------------------------------------
// Regressor
// ---------------------------------------------------------------------------

/// Decision-tree regressor (variance-reduction CART).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    config: TreeConfig,
    root: Option<Node>,
}

impl DecisionTreeRegressor {
    pub fn new(config: TreeConfig) -> Self {
        DecisionTreeRegressor { config, root: None }
    }

    /// Fit on rows `x` (finite features) and continuous targets `y`.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        validate_features(x, y.len());
        let rows: Vec<usize> = (0..y.len()).collect();
        self.root = Some(self.build(x, y, &rows, 0));
    }

    fn build(&self, x: &[Vec<f64>], y: &[f64], rows: &[usize], depth: usize) -> Node {
        let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len() as f64;
        let var = variance_of(rows, y);
        if depth >= self.config.max_depth
            || rows.len() < self.config.min_samples_split
            || var == 0.0
        {
            return Node::Leaf {
                class: 0,
                value: mean,
            };
        }
        let split = find_best_split_regression(x, rows, &self.config, y);
        let Some(split) = split else {
            return Node::Leaf {
                class: 0,
                value: mean,
            };
        };
        if split.score > var {
            return Node::Leaf {
                class: 0,
                value: mean,
            };
        }
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&r| x[r][split.feature] <= split.threshold);
        Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: Box::new(self.build(x, y, &left_rows, depth + 1)),
            right: Box::new(self.build(x, y, &right_rows, depth + 1)),
        }
    }

    /// Predict a value for each feature row.
    ///
    /// # Panics
    /// If called before `fit`.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        let root = self.root.as_ref().expect("regressor not fitted");
        x.iter().map(|row| root.predict(row).1).collect()
    }

    pub fn depth(&self) -> usize {
        self.root.as_ref().map_or(0, Node::depth)
    }

    pub fn n_leaves(&self) -> usize {
        self.root.as_ref().map_or(0, Node::n_leaves)
    }
}

fn variance_of(rows: &[usize], y: &[f64]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let n = rows.len() as f64;
    let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / n;
    rows.iter()
        .map(|&r| (y[r] - mean) * (y[r] - mean))
        .sum::<f64>()
        / n
}

fn validate_features(x: &[Vec<f64>], n_targets: usize) {
    assert!(!x.is_empty(), "cannot fit on empty data");
    assert_eq!(x.len(), n_targets, "feature/target length mismatch");
    let width = x[0].len();
    for (i, row) in x.iter().enumerate() {
        assert_eq!(row.len(), width, "ragged feature row {i}");
        assert!(
            row.iter().all(|v| v.is_finite()),
            "non-finite feature in row {i}; impute or encode missing values first"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, mse};

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn classifier_learns_threshold_rule() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<String> = (0..40)
            .map(|i| if i < 20 { "lo".into() } else { "hi".into() })
            .collect();
        let mut t = DecisionTreeClassifier::new(TreeConfig::default(), Criterion::Gini);
        t.fit(&x, &y);
        let preds = t.predict(&x);
        assert_eq!(accuracy(&y, &preds), 1.0);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn classifier_xor_needs_depth_two() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = labels(&["a", "b", "b", "a"]);
        let mut t = DecisionTreeClassifier::new(TreeConfig::default(), Criterion::Entropy);
        t.fit(&x, &y);
        assert_eq!(accuracy(&y, &t.predict(&x)), 1.0);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn classifier_respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<String> = (0..64).map(|i| format!("c{}", i % 8)).collect();
        let mut t = DecisionTreeClassifier::new(
            TreeConfig {
                max_depth: 2,
                ..TreeConfig::default()
            },
            Criterion::Gini,
        );
        t.fit(&x, &y);
        assert!(t.depth() <= 2);
        assert!(t.n_leaves() <= 4);
    }

    #[test]
    fn classifier_single_class_is_single_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = labels(&["only", "only", "only"]);
        let mut t = DecisionTreeClassifier::new(TreeConfig::default(), Criterion::Gini);
        t.fit(&x, &y);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict(&[vec![99.0]]), labels(&["only"]));
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<String> = (0..10)
            .map(|i| if i == 0 { "odd".into() } else { "even".into() })
            .collect();
        let mut t = DecisionTreeClassifier::new(
            TreeConfig {
                min_samples_leaf: 3,
                ..TreeConfig::default()
            },
            Criterion::Gini,
        );
        t.fit(&x, &y);
        // The lone "odd" sample cannot be isolated with min leaf 3.
        assert!(t.n_leaves() <= 2);
    }

    #[test]
    fn regressor_fits_piecewise_constant() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| if i < 15 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTreeRegressor::new(TreeConfig::default());
        t.fit(&x, &y);
        let preds = t.predict(&x);
        assert!(mse(&y, &preds) < 1e-12);
    }

    #[test]
    fn regressor_approximates_linear_fn() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let mut t = DecisionTreeRegressor::new(TreeConfig::default());
        t.fit(&x, &y);
        let test: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let truth: Vec<f64> = test.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let preds = t.predict(&test);
        assert!(mse(&truth, &preds) < 1.0, "mse = {}", mse(&truth, &preds));
    }

    #[test]
    fn regressor_constant_target_single_leaf() {
        let x = vec![vec![1.0], vec![2.0]];
        let mut t = DecisionTreeRegressor::new(TreeConfig::default());
        t.fit(&x, &[4.0, 4.0]);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict(&[vec![0.0]]), vec![4.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite feature")]
    fn rejects_nan_features() {
        let mut t = DecisionTreeRegressor::new(TreeConfig::default());
        t.fit(&[vec![f64::NAN]], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        DecisionTreeRegressor::new(TreeConfig::default()).predict(&[vec![1.0]]);
    }

    #[test]
    fn multiclass_classification() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            x.push(vec![(i / 30) as f64 * 10.0 + (i % 30) as f64 * 0.1]);
            y.push(format!("class{}", i / 30));
        }
        let mut t = DecisionTreeClassifier::new(TreeConfig::default(), Criterion::Gini);
        t.fit(&x, &y);
        assert_eq!(accuracy(&y, &t.predict(&x)), 1.0);
        assert_eq!(t.classes().len(), 3);
    }
}

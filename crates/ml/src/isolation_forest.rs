//! Isolation Forest anomaly detection (Liu, Ting & Zhou, 2008).
//!
//! One of the three statistical outlier detectors the paper lists ("IF").
//! Each tree isolates points by random axis-aligned splits; anomalous
//! points isolate in short paths. The anomaly score is
//! `2^(−E[h(x)] / c(n))` with the standard average-path normaliser `c`.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for [`IsolationForest`].
#[derive(Debug, Clone)]
pub struct IsolationForestConfig {
    pub n_trees: usize,
    /// Sub-sample size per tree (clamped to the data size).
    pub sample_size: usize,
    pub seed: u64,
}

impl Default for IsolationForestConfig {
    fn default() -> Self {
        IsolationForestConfig {
            n_trees: 100,
            sample_size: 256,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum ITree {
    Leaf {
        size: usize,
    },
    Split {
        feature: usize,
        value: f64,
        left: Box<ITree>,
        right: Box<ITree>,
    },
}

impl ITree {
    fn build(
        data: &[Vec<f64>],
        rows: &[usize],
        depth: usize,
        max_depth: usize,
        rng: &mut StdRng,
    ) -> ITree {
        if rows.len() <= 1 || depth >= max_depth {
            return ITree::Leaf { size: rows.len() };
        }
        let width = data[0].len();
        // Try a few random features to find one with spread.
        for _ in 0..width.max(4) {
            let f = rng.random_range(0..width);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &r in rows {
                lo = lo.min(data[r][f]);
                hi = hi.max(data[r][f]);
            }
            if lo < hi {
                let value = rng.random_range(lo..hi);
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| data[r][f] < value);
                if left_rows.is_empty() || right_rows.is_empty() {
                    continue;
                }
                return ITree::Split {
                    feature: f,
                    value,
                    left: Box::new(ITree::build(data, &left_rows, depth + 1, max_depth, rng)),
                    right: Box::new(ITree::build(data, &right_rows, depth + 1, max_depth, rng)),
                };
            }
        }
        ITree::Leaf { size: rows.len() }
    }

    /// Path length for `x`, with the leaf-size correction `c(size)`.
    fn path_length(&self, x: &[f64], depth: f64) -> f64 {
        match self {
            ITree::Leaf { size } => depth + average_path_length(*size),
            ITree::Split {
                feature,
                value,
                left,
                right,
            } => {
                if x[*feature] < *value {
                    left.path_length(x, depth + 1.0)
                } else {
                    right.path_length(x, depth + 1.0)
                }
            }
        }
    }
}

/// `c(n)`: average unsuccessful-search path length of a BST of `n` nodes.
fn average_path_length(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        n => {
            let n = n as f64;
            2.0 * ((n - 1.0).ln() + 0.577_215_664_901_532_9) - 2.0 * (n - 1.0) / n
        }
    }
}

/// A fitted isolation forest.
#[derive(Debug, Clone)]
pub struct IsolationForest {
    trees: Vec<ITree>,
    sample_size: usize,
}

impl IsolationForest {
    /// Fit on finite feature rows.
    ///
    /// # Panics
    /// On empty or ragged input.
    pub fn fit(data: &[Vec<f64>], config: &IsolationForestConfig) -> IsolationForest {
        assert!(!data.is_empty(), "cannot fit on empty data");
        let width = data[0].len();
        assert!(data.iter().all(|r| r.len() == width), "ragged rows");
        let sample_size = config.sample_size.min(data.len()).max(2);
        let max_depth = (sample_size as f64).log2().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let trees = (0..config.n_trees.max(1))
            .map(|_| {
                let rows: Vec<usize> = (0..sample_size)
                    .map(|_| rng.random_range(0..data.len()))
                    .collect();
                ITree::build(data, &rows, 0, max_depth, &mut rng)
            })
            .collect();
        IsolationForest { trees, sample_size }
    }

    /// Anomaly score in (0, 1); higher = more anomalous. Scores near 0.5
    /// are unremarkable; scores well above 0.5 indicate isolation.
    pub fn score(&self, x: &[f64]) -> f64 {
        let mean_path: f64 = self
            .trees
            .iter()
            .map(|t| t.path_length(x, 0.0))
            .sum::<f64>()
            / self.trees.len() as f64;
        let c = average_path_length(self.sample_size);
        if c == 0.0 {
            return 0.5;
        }
        2f64.powf(-mean_path / c)
    }

    /// Score every row.
    pub fn score_all(&self, data: &[Vec<f64>]) -> Vec<f64> {
        data.iter().map(|r| self.score(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outlier() -> Vec<Vec<f64>> {
        let mut data: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1])
            .collect();
        data.push(vec![50.0, 50.0]);
        data
    }

    #[test]
    fn outlier_scores_higher_than_inliers() {
        let data = cluster_with_outlier();
        let forest = IsolationForest::fit(&data, &IsolationForestConfig::default());
        let scores = forest.score_all(&data);
        let outlier = scores[200];
        let max_inlier = scores[..200].iter().cloned().fold(0.0f64, f64::max);
        assert!(
            outlier > max_inlier,
            "outlier {outlier} vs max inlier {max_inlier}"
        );
        assert!(outlier > 0.6);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = cluster_with_outlier();
        let cfg = IsolationForestConfig {
            seed: 9,
            ..Default::default()
        };
        let a = IsolationForest::fit(&data, &cfg).score_all(&data);
        let b = IsolationForest::fit(&data, &cfg).score_all(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn scores_in_unit_interval() {
        let data = cluster_with_outlier();
        let forest = IsolationForest::fit(&data, &IsolationForestConfig::default());
        for s in forest.score_all(&data) {
            assert!(s > 0.0 && s < 1.0, "score {s}");
        }
    }

    #[test]
    fn constant_data_scores_uniform() {
        let data = vec![vec![1.0, 1.0]; 50];
        let forest = IsolationForest::fit(&data, &IsolationForestConfig::default());
        let scores = forest.score_all(&data);
        let first = scores[0];
        assert!(scores.iter().all(|&s| (s - first).abs() < 1e-9));
    }

    #[test]
    fn average_path_length_known_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        assert_eq!(average_path_length(2), 1.0);
        // c(256) ≈ 10.24 per the paper's tables.
        let c = average_path_length(256);
        assert!((c - 10.24).abs() < 0.1, "c(256) = {c}");
    }
}

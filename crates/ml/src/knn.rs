//! k-nearest-neighbour classifier and regressor.
//!
//! The paper's ML imputer uses k-NN for categorical columns; the classifier
//! below votes among the `k` nearest training rows (ties broken by the
//! closer neighbour), the regressor averages them.

use crate::distance::euclidean_sq;

/// Shared neighbour search: indices of the `k` nearest training rows.
fn nearest(train: &[Vec<f64>], query: &[f64], k: usize) -> Vec<usize> {
    let mut dists: Vec<(usize, f64)> = train
        .iter()
        .enumerate()
        .map(|(i, row)| (i, euclidean_sq(row, query)))
        .collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    dists.truncate(k.max(1).min(train.len()));
    dists.into_iter().map(|(i, _)| i).collect()
}

/// k-NN classifier over string labels.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<String>,
}

impl KnnClassifier {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        KnnClassifier {
            k,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Memorise the training set.
    ///
    /// # Panics
    /// On empty or ragged input.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[String]) {
        assert!(!x.is_empty(), "cannot fit on empty data");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let width = x[0].len();
        assert!(x.iter().all(|r| r.len() == width), "ragged feature rows");
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    /// Majority vote among the k nearest neighbours; ties resolve to the
    /// label of the nearest tied neighbour (deterministic).
    pub fn predict(&self, queries: &[Vec<f64>]) -> Vec<String> {
        assert!(!self.x.is_empty(), "classifier not fitted");
        queries
            .iter()
            .map(|q| {
                let nn = nearest(&self.x, q, self.k);
                let mut counts: Vec<(&String, usize, usize)> = Vec::new(); // (label, votes, first_rank)
                for (rank, &i) in nn.iter().enumerate() {
                    let label = &self.y[i];
                    match counts.iter_mut().find(|(l, _, _)| *l == label) {
                        Some(entry) => entry.1 += 1,
                        None => counts.push((label, 1, rank)),
                    }
                }
                counts
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
                    .map(|(l, _, _)| l.clone())
                    .expect("at least one neighbour")
            })
            .collect()
    }
}

/// k-NN regressor (mean of the k nearest targets).
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl KnnRegressor {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        KnnRegressor {
            k,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit on empty data");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    pub fn predict(&self, queries: &[Vec<f64>]) -> Vec<f64> {
        assert!(!self.x.is_empty(), "regressor not fitted");
        queries
            .iter()
            .map(|q| {
                let nn = nearest(&self.x, q, self.k);
                nn.iter().map(|&i| self.y[i]).sum::<f64>() / nn.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn classifier_votes_among_neighbours() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2], vec![10.0], vec![10.1]];
        let y = labels(&["a", "a", "a", "b", "b"]);
        let mut m = KnnClassifier::new(3);
        m.fit(&x, &y);
        assert_eq!(m.predict(&[vec![0.05], vec![10.05]]), labels(&["a", "b"]));
    }

    #[test]
    fn classifier_tie_goes_to_nearest() {
        let x = vec![vec![0.0], vec![2.0]];
        let y = labels(&["near", "far"]);
        let mut m = KnnClassifier::new(2);
        m.fit(&x, &y);
        // Query at 0.5: both neighbours vote once; "near" is closer.
        assert_eq!(m.predict(&[vec![0.5]]), labels(&["near"]));
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = labels(&["a", "a"]);
        let mut m = KnnClassifier::new(99);
        m.fit(&x, &y);
        assert_eq!(m.predict(&[vec![0.4]]), labels(&["a"]));
    }

    #[test]
    fn regressor_averages_neighbours() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0]];
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &[2.0, 4.0, 100.0]);
        let p = m.predict(&[vec![0.5]]);
        assert_eq!(p, vec![3.0]);
    }

    #[test]
    fn exact_match_dominates_with_k1() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let mut m = KnnRegressor::new(1);
        m.fit(&x, &[10.0, 20.0, 30.0]);
        assert_eq!(m.predict(&[vec![2.0]]), vec![20.0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        KnnClassifier::new(0);
    }
}

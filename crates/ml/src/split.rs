//! Train/test splitting and k-fold cross-validation index generation.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Row indices for a train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    pub train: Vec<usize>,
    pub test: Vec<usize>,
}

/// Shuffle `n` row indices with `seed` and split off `test_fraction` of them
/// (at least one test row when `n >= 2`, and never all rows).
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> Split {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut n_test = (n as f64 * test_fraction).round() as usize;
    if n >= 2 {
        n_test = n_test.clamp(1, n - 1);
    } else {
        n_test = 0;
    }
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    Split { train, test }
}

/// `k` cross-validation folds over `n` rows; fold `i` is the test set of
/// split `i`, the remaining rows its training set. Folds differ in size by
/// at most one element.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<Split> {
    assert!(k >= 2, "k must be at least 2");
    assert!(n >= k, "need at least k rows");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = idx[start..start + size].to_vec();
        let train: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + size..])
            .copied()
            .collect();
        folds.push(Split { train, test });
        start += size;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions_all_rows() {
        let s = train_test_split(100, 0.25, 7);
        assert_eq!(s.test.len(), 25);
        assert_eq!(s.train.len(), 75);
        let all: HashSet<usize> = s.train.iter().chain(&s.test).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.2, 3), train_test_split(50, 0.2, 3));
        assert_ne!(
            train_test_split(50, 0.2, 3).test,
            train_test_split(50, 0.2, 4).test
        );
    }

    #[test]
    fn split_never_empties_either_side() {
        let s = train_test_split(2, 0.01, 0);
        assert_eq!(s.test.len(), 1);
        assert_eq!(s.train.len(), 1);
        let s = train_test_split(3, 0.99, 0);
        assert_eq!(s.train.len(), 1);
        let s = train_test_split(1, 0.5, 0);
        assert_eq!(s.test.len(), 0);
        assert_eq!(s.train.len(), 1);
    }

    #[test]
    fn k_fold_covers_each_row_exactly_once_as_test() {
        let folds = k_fold(10, 3, 11);
        assert_eq!(folds.len(), 3);
        let mut test_rows: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        test_rows.sort_unstable();
        assert_eq!(test_rows, (0..10).collect::<Vec<_>>());
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 10);
            let train: HashSet<usize> = f.train.iter().copied().collect();
            assert!(f.test.iter().all(|t| !train.contains(t)));
        }
    }

    #[test]
    fn fold_sizes_balanced() {
        let folds = k_fold(11, 4, 0);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 11);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn k_fold_rejects_k1() {
        k_fold(10, 1, 0);
    }
}

//! Agglomerative (hierarchical) clustering with average linkage.
//!
//! RAHA's tuple-sampling strategy clusters each column's cells by their
//! detector-signature vectors and asks the user to label one representative
//! per cluster. Signature vectors are highly duplicated, so [`cluster`]
//! first dedupes identical vectors and clusters the unique ones — the
//! distance matrix stays tiny even for large columns.

use std::collections::HashMap;

use crate::distance::euclidean_sq;

/// Result of an agglomerative run: one cluster id per input row.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    pub assignments: Vec<usize>,
    pub n_clusters: usize,
}

/// Cluster `data` into (at most) `k` clusters using average-linkage
/// agglomeration over deduplicated vectors.
///
/// If there are fewer than `k` distinct vectors, each distinct vector is
/// its own cluster.
///
/// # Panics
/// On empty input or ragged rows.
pub fn cluster(data: &[Vec<f64>], k: usize) -> ClusterResult {
    assert!(!data.is_empty(), "cannot cluster empty data");
    let width = data[0].len();
    assert!(data.iter().all(|r| r.len() == width), "ragged rows");
    let k = k.max(1);

    // Dedupe identical vectors through a text key (vectors come from
    // detector signatures and are exactly reproducible).
    let mut unique: Vec<Vec<f64>> = Vec::new();
    let mut key_to_unique: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut row_to_unique: Vec<usize> = Vec::with_capacity(data.len());
    for row in data {
        let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
        let id = *key_to_unique.entry(key).or_insert_with(|| {
            unique.push(row.clone());
            unique.len() - 1
        });
        row_to_unique.push(id);
    }

    let u = unique.len();
    if u <= k {
        return ClusterResult {
            assignments: row_to_unique,
            n_clusters: u,
        };
    }

    // Average-linkage agglomeration over the unique vectors. `members`
    // tracks which unique ids belong to each active cluster.
    let mut members: Vec<Vec<usize>> = (0..u).map(|i| vec![i]).collect();
    let mut active: Vec<bool> = vec![true; u];
    let mut dist = vec![vec![0.0f64; u]; u];
    for i in 0..u {
        for j in (i + 1)..u {
            let d = euclidean_sq(&unique[i], &unique[j]).sqrt();
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }

    let mut n_active = u;
    while n_active > k {
        // Find the closest active pair (average linkage distance).
        let mut best = (0usize, 0usize, f64::INFINITY);
        for i in 0..u {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..u {
                if !active[j] {
                    continue;
                }
                if dist[i][j] < best.2 {
                    best = (i, j, dist[i][j]);
                }
            }
        }
        let (a, b, _) = best;
        // Merge b into a; update average-linkage distances per
        // Lance–Williams: d(a∪b, x) = (|a| d(a,x) + |b| d(b,x)) / (|a|+|b|).
        let na = members[a].len() as f64;
        let nb = members[b].len() as f64;
        for x in 0..u {
            if x == a || x == b || !active[x] {
                continue;
            }
            let d = (na * dist[a][x] + nb * dist[b][x]) / (na + nb);
            dist[a][x] = d;
            dist[x][a] = d;
        }
        let moved = std::mem::take(&mut members[b]);
        members[a].extend(moved);
        active[b] = false;
        n_active -= 1;
    }

    // Compact cluster ids and map rows through their unique vector.
    let mut unique_to_cluster = vec![usize::MAX; u];
    let mut next = 0usize;
    for (c, m) in members.iter().enumerate() {
        if active[c] {
            for &uid in m {
                unique_to_cluster[uid] = next;
            }
            next += 1;
        }
    }
    let assignments: Vec<usize> = row_to_unique
        .into_iter()
        .map(|uid| unique_to_cluster[uid])
        .collect();
    ClusterResult {
        assignments,
        n_clusters: next,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_share_clusters() {
        let data = vec![
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![9.0, 9.0],
            vec![0.0, 0.0],
        ];
        let res = cluster(&data, 2);
        assert_eq!(res.n_clusters, 2);
        assert_eq!(res.assignments[0], res.assignments[1]);
        assert_eq!(res.assignments[0], res.assignments[3]);
        assert_ne!(res.assignments[0], res.assignments[2]);
    }

    #[test]
    fn fewer_unique_than_k() {
        let data = vec![vec![1.0], vec![1.0], vec![2.0]];
        let res = cluster(&data, 10);
        assert_eq!(res.n_clusters, 2);
    }

    #[test]
    fn merges_nearest_first() {
        let data = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1], vec![100.0]];
        let res = cluster(&data, 3);
        assert_eq!(res.n_clusters, 3);
        assert_eq!(res.assignments[0], res.assignments[1]);
        assert_eq!(res.assignments[2], res.assignments[3]);
        assert_ne!(res.assignments[0], res.assignments[4]);
        assert_ne!(res.assignments[2], res.assignments[4]);
    }

    #[test]
    fn k_one_puts_everything_together() {
        let data = vec![vec![0.0], vec![50.0], vec![100.0]];
        let res = cluster(&data, 1);
        assert_eq!(res.n_clusters, 1);
        assert!(res.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn cluster_ids_are_dense() {
        let data: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 10.0]).collect();
        let res = cluster(&data, 4);
        let mut ids: Vec<usize> = res.assignments.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}

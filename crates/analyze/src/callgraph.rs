//! The deterministic call graph over the [`index`](crate::index)
//! symbol table.
//!
//! Resolution is best-effort and **conservative towards silence**: an
//! edge is only recorded when the callee is unambiguous —
//!
//! - `free_fn(…)` and `path::free_fn(…)`: by unique bare name among
//!   non-test free functions (same-file candidates win ties);
//! - `Type::method(…)` (including `use`-aliased type names): by the
//!   unique `(type, method)` pair;
//! - `Self::method(…)` and `self.method(…)`: the enclosing impl's
//!   type, falling back to unique-name lookup;
//! - `recv.method(…)`: by unique method name across every impl in the
//!   workspace — two impls of the same method name drop the edge.
//!
//! Ambiguity therefore produces *false negatives, never false edges*;
//! the rules built on the graph inherit that bias, and DESIGN.md lists
//! the classes this misses.

use crate::index::Index;
use crate::lexer::{SourceFile, TokKind};

/// One resolved call site inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Call {
    /// Callee: index into `Index::fns`.
    pub to: usize,
    /// Byte offset of the callee name token.
    pub offset: usize,
    /// 1-based line of the call site.
    pub line: u32,
}

/// Per-function resolved call lists, parallel to `Index::fns`, each
/// sorted by site offset.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub calls: Vec<Vec<Call>>,
}

/// Keywords and control constructs that look like `name(` but are not
/// calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "in"
            | "as"
            | "where"
            | "unsafe"
            | "else"
            | "let"
            | "mut"
            | "ref"
            | "fn"
            | "impl"
            | "dyn"
            | "pub"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
    )
}

/// Build the graph. Deterministic: functions in index order, call
/// sites in byte order, resolution independent of map iteration.
pub fn build(files: &[SourceFile], idx: &Index) -> CallGraph {
    let mut cg = CallGraph {
        calls: vec![Vec::new(); idx.fns.len()],
    };
    for (fid, fdef) in idx.fns.iter().enumerate() {
        if fdef.is_test {
            continue;
        }
        let file = &files[fdef.file];
        let toks = &file.tokens;
        let lo = file.token_at_or_after(fdef.body.0);
        let hi = file.token_at_or_after(fdef.body.1 + 1);
        for j in lo..hi {
            if toks[j].kind != TokKind::Ident
                || toks.get(j + 1).map(|t| t.kind) != Some(TokKind::Punct(b'('))
            {
                continue;
            }
            let name = file.tok_text(&toks[j]);
            if is_keyword(name) {
                continue;
            }
            let target = resolve(
                files,
                idx,
                fdef.file,
                fdef.type_name.as_deref(),
                toks,
                j,
                name,
            );
            if let Some(to) = target {
                // Calls into the same fn (recursion) still count; calls
                // into test fns never resolve (not indexed by name).
                let (line, _) = file.line_col(toks[j].start);
                cg.calls[fid].push(Call {
                    to,
                    offset: toks[j].start,
                    line,
                });
            }
        }
        cg.calls[fid].sort_by_key(|c| c.offset);
    }
    cg
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    files: &[SourceFile],
    idx: &Index,
    file_i: usize,
    self_type: Option<&str>,
    toks: &[crate::lexer::Token],
    j: usize,
    name: &str,
) -> Option<usize> {
    let file = &files[file_i];
    let prev = j.checked_sub(1).map(|p| toks[p].kind);
    if prev == Some(TokKind::Punct(b'.')) {
        // Method call. `self.m(…)` prefers the enclosing impl.
        let recv_is_self = j
            .checked_sub(2)
            .map(|r| toks[r].kind == TokKind::Ident && file.tok_text(&toks[r]) == "self")
            .unwrap_or(false);
        if recv_is_self {
            if let Some(hit) = self_type.and_then(|t| idx.unique_method(t, name)) {
                return Some(hit);
            }
        }
        return unique_method_anywhere(idx, name);
    }
    // Path or free call: walk the `a::b::name` segments backwards.
    let mut segs: Vec<&str> = vec![name];
    let mut k = j;
    while k >= 2
        && toks[k - 1].kind == TokKind::Punct(b':')
        && toks[k - 2].kind == TokKind::Punct(b':')
    {
        if k >= 3 && toks[k - 3].kind == TokKind::Ident {
            segs.push(file.tok_text(&toks[k - 3]));
            k -= 3;
        } else {
            break; // `<T as Trait>::name(…)` — give up on the head
        }
    }
    segs.reverse();
    if segs.len() >= 2 {
        let qualifier = segs[segs.len() - 2];
        if qualifier == "Self" {
            return self_type.and_then(|t| idx.unique_method(t, name));
        }
        let type_name = resolve_type_alias(idx, file_i, qualifier);
        if type_name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
        {
            return idx.unique_method(&type_name, name);
        }
    }
    // Free function: same-file definition wins, else unique name
    // workspace-wide among free fns.
    let candidates = idx.by_name.get(name)?;
    let free: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| idx.fns[c].type_name.is_none())
        .collect();
    if let [one] = free
        .iter()
        .copied()
        .filter(|&c| idx.fns[c].file == file_i)
        .collect::<Vec<_>>()[..]
    {
        return Some(one);
    }
    match free[..] {
        [one] => Some(one),
        _ => None,
    }
}

/// Map a possibly-`use`-aliased qualifier to the type name the index
/// knows: the last segment of the imported path, or the qualifier
/// itself.
fn resolve_type_alias(idx: &Index, file_i: usize, qualifier: &str) -> String {
    idx.files[file_i]
        .uses
        .get(qualifier)
        .and_then(|full| full.rsplit("::").next())
        .unwrap_or(qualifier)
        .to_string()
}

/// Method names that collide with ubiquitous std-library methods
/// (`Condvar::wait`, `str::split`, `TcpStream::shutdown`, …). A
/// receiver-untyped `.name(…)` call with one of these names must NOT
/// resolve by workspace-wide uniqueness: the receiver is far more
/// likely a std type, and a wrong edge poisons every rule downstream.
/// Typed `Type::name(…)` paths still resolve normally.
fn collides_with_std(name: &str) -> bool {
    matches!(
        name,
        // sync & threading
        "wait" | "wait_timeout" | "wait_while" | "join" | "send" | "recv" | "recv_timeout"
            | "try_send" | "try_recv" | "notify_one" | "notify_all" | "lock" | "try_lock"
            | "spawn" | "load" | "store" | "swap" | "shutdown"
            // io
            | "write" | "write_all" | "write_fmt" | "read" | "read_line" | "read_exact"
            | "read_to_string" | "flush"
            // collections & strings
            | "split" | "splitn" | "rsplit" | "trim" | "push" | "push_str" | "pop" | "insert"
            | "remove" | "get" | "get_mut" | "take" | "replace" | "retain" | "drain" | "extend"
            | "clear" | "contains" | "contains_key" | "starts_with" | "ends_with" | "find"
            | "parse" | "iter" | "iter_mut" | "len" | "is_empty" | "clone" | "next" | "map"
            | "filter" | "fold" | "collect" | "count" | "last" | "first"
            // numerics & misc
            | "min" | "max" | "abs" | "cmp" | "eq" | "hash" | "fmt" | "drop" | "default"
    )
}

fn unique_method_anywhere(idx: &Index, name: &str) -> Option<usize> {
    if collides_with_std(name) {
        return None;
    }
    let candidates = idx.by_name.get(name)?;
    let methods: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| idx.fns[c].type_name.is_some())
        .collect();
    match methods[..] {
        [one] => Some(one),
        _ => None,
    }
}

/// Serialise the graph as deterministic JSON: functions sorted by
/// qualified name, edges name-sorted by (from, to), one line per the
/// first call site of each distinct edge. Byte-identical across runs on
/// identical input.
pub fn dump_json(files: &[SourceFile], idx: &Index, cg: &CallGraph) -> String {
    use serde_json::Value;
    let mut fn_order: Vec<usize> = (0..idx.fns.len())
        .filter(|&i| !idx.fns[i].is_test)
        .collect();
    fn_order.sort_by(|&a, &b| idx.fns[a].qname.cmp(&idx.fns[b].qname));
    let functions: Vec<Value> = fn_order
        .iter()
        .map(|&i| {
            let f = &idx.fns[i];
            Value::Obj(vec![
                ("name".to_string(), Value::Str(f.qname.clone())),
                ("file".to_string(), Value::Str(files[f.file].path.clone())),
                ("line".to_string(), Value::U64(f.line as u64)),
            ])
        })
        .collect();
    let mut edges: Vec<(String, String, u32)> = Vec::new();
    for (from, calls) in cg.calls.iter().enumerate() {
        for c in calls {
            edges.push((
                idx.fns[from].qname.clone(),
                idx.fns[c.to].qname.clone(),
                c.line,
            ));
        }
    }
    edges.sort();
    edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    let edges: Vec<Value> = edges
        .into_iter()
        .map(|(from, to, line)| {
            Value::Obj(vec![
                ("from".to_string(), Value::Str(from)),
                ("to".to_string(), Value::Str(to)),
                ("line".to_string(), Value::U64(line as u64)),
            ])
        })
        .collect();
    let doc = Value::Obj(vec![
        ("version".to_string(), Value::U64(1)),
        ("functions".to_string(), Value::Arr(functions)),
        ("edges".to_string(), Value::Arr(edges)),
    ]);
    let mut text = serde_json::to_string_pretty(&doc).unwrap_or_default();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index;

    fn graph(sources: &[(&str, &str)]) -> (Vec<SourceFile>, Index, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, t)| SourceFile::parse(p, t))
            .collect();
        let idx = index::build(&files);
        let cg = build(&files, &idx);
        (files, idx, cg)
    }

    fn edge_names(idx: &Index, cg: &CallGraph) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (from, calls) in cg.calls.iter().enumerate() {
            for c in calls {
                out.push((idx.fns[from].qname.clone(), idx.fns[c.to].qname.clone()));
            }
        }
        out
    }

    #[test]
    fn free_self_and_typed_calls_resolve() {
        let src = "\
struct S;
impl S {
    fn a(&self) { self.b(); helper(); S::c(); Self::c(); }
    fn b(&self) {}
    fn c() {}
}
fn helper() {}
";
        let (_, idx, cg) = graph(&[("crates/rest/src/x.rs", src)]);
        let edges = edge_names(&idx, &cg);
        assert_eq!(
            edges,
            vec![
                ("rest::x::S::a".into(), "rest::x::S::b".into()),
                ("rest::x::S::a".into(), "rest::x::helper".into()),
                ("rest::x::S::a".into(), "rest::x::S::c".into()),
                ("rest::x::S::a".into(), "rest::x::S::c".into()),
            ]
        );
    }

    #[test]
    fn ambiguous_method_names_drop_the_edge() {
        let src = "\
struct A; struct B;
impl A { fn go(&self) {} }
impl B { fn go(&self) {} }
fn f(x: &A) { x.go(); }
fn g(a: &A) { A::go(a); }
";
        let (_, idx, cg) = graph(&[("crates/rest/src/x.rs", src)]);
        let edges = edge_names(&idx, &cg);
        // `x.go()` is ambiguous (A::go vs B::go) — no edge. `A::go`
        // is typed — resolved.
        assert_eq!(edges, vec![("rest::x::g".into(), "rest::x::A::go".into())]);
    }

    #[test]
    fn cross_crate_unique_methods_resolve_via_alias() {
        let a = "\
pub struct Svc;
impl Svc { pub fn only_here(&self) {} }
";
        let b = "\
use datalens_core::jobs::Svc as JobSvc;
fn f(s: &Svc) { s.only_here(); JobSvc::only_here(s); }
";
        let (_, idx, cg) = graph(&[
            ("crates/core/src/jobs/mod.rs", a),
            ("crates/rest/src/x.rs", b),
        ]);
        let edges = edge_names(&idx, &cg);
        assert_eq!(
            edges,
            vec![
                ("rest::x::f".into(), "core::jobs::Svc::only_here".into()),
                ("rest::x::f".into(), "core::jobs::Svc::only_here".into()),
            ]
        );
    }

    #[test]
    fn keywords_macros_and_test_callees_do_not_edge() {
        let src = "\
fn target() {}
fn f(x: u8) {
    if (x > 0) {}
    println!(\"{x}\");
    match (x) { _ => {} }
    target();
}
#[cfg(test)]
mod tests {
    fn fake_target() { super::f(0); }
}
";
        let (_, idx, cg) = graph(&[("crates/rest/src/x.rs", src)]);
        let edges = edge_names(&idx, &cg);
        assert_eq!(edges, vec![("rest::x::f".into(), "rest::x::target".into())]);
    }

    #[test]
    fn std_colliding_method_names_never_resolve_untyped() {
        // `split` exists exactly once in the workspace, but `path.split(…)`
        // is almost certainly `str::split` — no edge. The typed path
        // still resolves.
        let src = "\
struct Sampler;
impl Sampler { fn split(&self) {} }
fn f(path: &str, s: &Sampler) {
    let parts = path.split('/');
    s.wait();
    Sampler::split(s);
}
";
        let (_, idx, cg) = graph(&[("crates/rest/src/x.rs", src)]);
        let edges = edge_names(&idx, &cg);
        assert_eq!(
            edges,
            vec![("rest::x::f".into(), "rest::x::Sampler::split".into())]
        );
    }

    #[test]
    fn dump_is_deterministic_and_name_sorted() {
        let srcs = [
            ("crates/rest/src/b.rs", "fn z() { a_fn(); }"),
            ("crates/rest/src/a.rs", "pub fn a_fn() {}"),
        ];
        let (files, idx, cg) = graph(&srcs);
        let one = dump_json(&files, &idx, &cg);
        let (files2, idx2, cg2) = graph(&srcs);
        let two = dump_json(&files2, &idx2, &cg2);
        assert_eq!(one, two);
        let fpos = one.find("\"functions\"").unwrap();
        let a = one.find("rest::a::a_fn").unwrap();
        let z = one.find("rest::b::z").unwrap();
        assert!(fpos < a && a < z, "functions not name-sorted:\n{one}");
        assert!(one.contains("\"edges\""));
    }
}

//! The line-anchored diagnostic model and the rule catalog.

use std::fmt;

/// Diagnostic severity. The CI gate is driven by the baseline ratchet,
/// not by severity alone — severity is how humans triage the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (stable; baseline keys and suppressions use it).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based.
    pub line: u32,
    /// 1-based.
    pub col: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.path,
            self.line,
            self.col,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

/// Stable rule ids.
pub const PANIC_IN_LIB: &str = "panic-in-lib";
pub const LOCK_ORDERING: &str = "lock-ordering";
pub const MIXED_MUTEX: &str = "mixed-mutex";
pub const RELAXED_CROSS_THREAD: &str = "relaxed-cross-thread";
pub const BOUNDED_CHANNEL: &str = "bounded-channel-discipline";
pub const METRIC_NAMING: &str = "metric-naming";
/// Meta-rule: a suppression comment without a reason is itself a
/// finding (and the reason-less suppression is not honoured).
pub const SUPPRESSION_REASON: &str = "suppression-requires-reason";

/// Catalog entry describing one rule (`--list-rules`, DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// Every rule the analyzer runs, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: PANIC_IN_LIB,
        severity: Severity::Error,
        summary: "unwrap/expect/panic!/unreachable!/todo!/integer-literal indexing in \
                  non-test code of serving-path crates (rest, obs, core::jobs, core::engine)",
    },
    RuleInfo {
        id: LOCK_ORDERING,
        severity: Severity::Error,
        summary: "cycle in the per-crate lock-acquisition graph built from lock()/read()/write() \
                  call sites held across later acquisitions — a potential deadlock",
    },
    RuleInfo {
        id: MIXED_MUTEX,
        severity: Severity::Warning,
        summary: "std::sync and parking_lot lock types mixed in one module",
    },
    RuleInfo {
        id: RELAXED_CROSS_THREAD,
        severity: Severity::Warning,
        summary: "Ordering::Relaxed on a load/store/swap/compare_exchange (cross-thread \
                  visibility risk); pure fetch_add/fetch_sub counters are allowlisted",
    },
    RuleInfo {
        id: BOUNDED_CHANNEL,
        severity: Severity::Warning,
        summary: "queue/channel constructed without naming a capacity in a serving-path crate \
                  (VecDeque::new, mpsc::channel)",
    },
    RuleInfo {
        id: METRIC_NAMING,
        severity: Severity::Warning,
        summary: "registered metric name violates ^[a-z][a-z0-9_]*(_total|_ms|_bytes)?$ or its \
                  kind suffix convention, or a label value is built with format! (unbounded \
                  cardinality)",
    },
    RuleInfo {
        id: SUPPRESSION_REASON,
        severity: Severity::Error,
        summary: "lint:allow(…) suppression without a ': reason' — reasons are mandatory",
    },
];

/// Look up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col_anchored() {
        let d = Diagnostic {
            rule: PANIC_IN_LIB,
            severity: Severity::Error,
            path: "crates/rest/src/http.rs".into(),
            line: 246,
            col: 9,
            message: "`.expect(` in library code".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/rest/src/http.rs:246:9: error[panic-in-lib]: `.expect(` in library code"
        );
    }

    #[test]
    fn catalog_is_consistent() {
        assert_eq!(RULES.len(), 7);
        assert!(rule_info(PANIC_IN_LIB).is_some());
        assert!(rule_info("no-such-rule").is_none());
        // Ids are unique.
        let mut ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len());
    }
}

//! The line-anchored diagnostic model and the rule catalog.

use std::fmt;

/// Diagnostic severity. The CI gate is driven by the baseline ratchet,
/// not by severity alone — severity is how humans triage the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (stable; baseline keys and suppressions use it).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based.
    pub line: u32,
    /// 1-based.
    pub col: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.path,
            self.line,
            self.col,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

/// Stable rule ids.
pub const PANIC_IN_LIB: &str = "panic-in-lib";
pub const LOCK_ORDERING: &str = "lock-ordering";
pub const MIXED_MUTEX: &str = "mixed-mutex";
pub const RELAXED_CROSS_THREAD: &str = "relaxed-cross-thread";
pub const BOUNDED_CHANNEL: &str = "bounded-channel-discipline";
pub const METRIC_NAMING: &str = "metric-naming";
pub const BLOCKING_WHILE_LOCK_HELD: &str = "blocking-while-lock-held";
pub const PANIC_REACHABILITY: &str = "panic-reachability";
pub const SPAWN_WITHOUT_JOIN: &str = "spawn-without-join";
/// Meta-rule: a suppression comment without a reason is itself a
/// finding (and the reason-less suppression is not honoured).
pub const SUPPRESSION_REASON: &str = "suppression-requires-reason";

/// Catalog entry describing one rule (`--list-rules`, DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// Every rule the analyzer runs, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: PANIC_IN_LIB,
        severity: Severity::Error,
        summary: "unwrap/expect/panic!/unreachable!/todo!/integer-literal indexing in \
                  non-test code of serving-path crates (rest, obs, core::jobs, core::engine)",
    },
    RuleInfo {
        id: LOCK_ORDERING,
        severity: Severity::Error,
        summary: "cycle in the per-crate lock-acquisition graph built from lock()/read()/write() \
                  call sites held across later acquisitions — a potential deadlock",
    },
    RuleInfo {
        id: MIXED_MUTEX,
        severity: Severity::Warning,
        summary: "std::sync and parking_lot lock types mixed in one module",
    },
    RuleInfo {
        id: RELAXED_CROSS_THREAD,
        severity: Severity::Warning,
        summary: "Ordering::Relaxed on a load/store/swap/compare_exchange (cross-thread \
                  visibility risk); pure fetch_add/fetch_sub counters are allowlisted",
    },
    RuleInfo {
        id: BOUNDED_CHANNEL,
        severity: Severity::Warning,
        summary: "queue/channel constructed without naming a capacity in a serving-path crate \
                  (VecDeque::new, mpsc::channel)",
    },
    RuleInfo {
        id: METRIC_NAMING,
        severity: Severity::Warning,
        summary: "registered metric name violates ^[a-z][a-z0-9_]*(_total|_ms|_bytes)?$ or its \
                  kind suffix convention, or a label value is built with format! (unbounded \
                  cardinality)",
    },
    RuleInfo {
        id: BLOCKING_WHILE_LOCK_HELD,
        severity: Severity::Error,
        summary: "a call path from a site where a guard is live reaches a blocking operation \
                  (sleep, Condvar::wait, channel send/recv, JoinHandle::join, socket I/O, or \
                  acquiring another modeled lock) — serving threads stall behind that guard",
    },
    RuleInfo {
        id: PANIC_REACHABILITY,
        severity: Severity::Error,
        summary: "a panicking construct outside the serving crates is reachable within a few \
                  call hops from a route handler, worker loop, or stream pump — the offending \
                  call chain is printed",
    },
    RuleInfo {
        id: SPAWN_WITHOUT_JOIN,
        severity: Severity::Error,
        summary: "a thread is spawned on the serving path with its JoinHandle discarded (or in \
                  a crate whose shutdown sequence never joins) — document the detach reason or \
                  join on shutdown",
    },
    RuleInfo {
        id: SUPPRESSION_REASON,
        severity: Severity::Error,
        summary: "lint:allow(…) suppression without a ': reason' — reasons are mandatory",
    },
];

/// Look up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Long-form explanation for `--explain <rule>`: what the rule models,
/// why it matters on this workspace's serving path, and how to fix or
/// (with a reviewed reason) suppress a finding.
pub fn explain(id: &str) -> Option<&'static str> {
    Some(match id {
        PANIC_IN_LIB => {
            "Panics in library code of serving-path crates (rest, obs, core::jobs, \
             core::engine) kill a worker thread or poison a lock mid-request. The rule flags \
             `.unwrap()`, `.expect(…)`, `panic!`/`unreachable!`/`todo!`/`unimplemented!`, and \
             integer-literal indexing outside test code. Fix by returning a typed error, or \
             document the invariant: `// lint:allow(panic-in-lib): <why this cannot fire>`."
        }
        LOCK_ORDERING => {
            "Builds a per-crate acquisition graph from `.lock()`/`.read()`/`.write()` call \
             sites held across later acquisitions (`let`-bound guards live to the end of the \
             block, truncated at `drop(guard)`). Any cycle — including re-acquiring a \
             non-reentrant lock while held — is a potential deadlock. Fix by ordering \
             acquisitions consistently or narrowing guard scopes."
        }
        MIXED_MUTEX => {
            "One module using both std::sync and parking_lot lock families invites subtle \
             API mismatches (poisoning vs not, guard Send-ness). Unify on one family per \
             module."
        }
        RELAXED_CROSS_THREAD => {
            "`Ordering::Relaxed` on load/store/swap/compare_exchange gives no cross-thread \
             visibility ordering; pure `fetch_add`/`fetch_sub` counters are allowlisted. Use \
             Acquire/Release (or SeqCst) when the atomic gates other memory."
        }
        BOUNDED_CHANNEL => {
            "Queues on the serving path must name a capacity: an unbounded `VecDeque::new` or \
             `mpsc::channel` turns a slow consumer into unbounded memory growth. Use a \
             bounded constructor or document why the producer is naturally bounded."
        }
        METRIC_NAMING => {
            "Registered metric names must match ^[a-z][a-z0-9_]*(_total|_ms|_bytes)?$ with the \
             kind-appropriate suffix, and label values must not be `format!`-built (unbounded \
             cardinality explodes the registry)."
        }
        BLOCKING_WHILE_LOCK_HELD => {
            "Interprocedural: from every site where a Mutex/RwLock guard is live, the rule \
             follows the call graph (within the serving crates) looking for blocking \
             operations — `thread::sleep`, `Condvar::wait` on a *different* guard, \
             bounded-channel send/recv, `JoinHandle::join`, socket read/write/flush, or \
             acquiring another lock that the lock-ordering graph models. A hit means every \
             other thread needing that guard stalls behind the blocking op. Waiting on a \
             condvar with the only live guard is exempt (that wait releases the guard). Fix \
             by narrowing the guard scope so the blocking call runs lock-free; the printed \
             call chain shows the path to restructure."
        }
        PANIC_REACHABILITY => {
            "Interprocedural extension of panic-in-lib: panicking constructs in NON-serving \
             crates that a serving root (route-registering function, worker loop, stream \
             pump, or any thread-spawning function) can reach within 5 call hops through the \
             deterministic call graph. The diagnostic prints the root-to-panic chain. Fix at \
             the panic site (return a typed error); `lint:allow(panic-in-lib)` or \
             `lint:allow(panic-reachability)` with a reason at the site also clears it, \
             because a documented invariant holds transitively."
        }
        SPAWN_WITHOUT_JOIN => {
            "A `spawn(…)` on the serving path whose JoinHandle is discarded (`let _ =`, or a \
             bare statement) — or that lives in a crate whose non-test code never calls \
             `.join()` — leaks a thread the shutdown sequence cannot wait for. Scoped \
             spawns inside `thread::scope` are exempt (the scope joins). Fix by storing the \
             handle and joining it on shutdown, or document the detach reason with \
             `// lint:allow(spawn-without-join): <why detaching is safe>`."
        }
        SUPPRESSION_REASON => {
            "Every `// lint:allow(<rule>)` must carry `: <reason>`. Reason-less suppressions \
             are reported and NOT honoured — the reason is the reviewed record of why the \
             finding is safe."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col_anchored() {
        let d = Diagnostic {
            rule: PANIC_IN_LIB,
            severity: Severity::Error,
            path: "crates/rest/src/http.rs".into(),
            line: 246,
            col: 9,
            message: "`.expect(` in library code".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/rest/src/http.rs:246:9: error[panic-in-lib]: `.expect(` in library code"
        );
    }

    #[test]
    fn catalog_is_consistent() {
        assert_eq!(RULES.len(), 10);
        assert!(rule_info(PANIC_IN_LIB).is_some());
        assert!(rule_info(BLOCKING_WHILE_LOCK_HELD).is_some());
        assert!(rule_info(PANIC_REACHABILITY).is_some());
        assert!(rule_info(SPAWN_WITHOUT_JOIN).is_some());
        assert!(rule_info("no-such-rule").is_none());
        // Every catalog rule has an --explain entry.
        for r in RULES {
            assert!(explain(r.id).is_some(), "no explain text for {}", r.id);
        }
        assert!(explain("no-such-rule").is_none());
        // Ids are unique.
        let mut ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len());
    }
}

//! CLI for the workspace lint & concurrency-audit engine.
//!
//! ```text
//! cargo run -p datalens-analyze -- --workspace --baseline ANALYZE.json
//! ```
//!
//! Exit codes: `0` clean (or no regression against the baseline),
//! `1` usage / IO error, `2` findings (strict mode) or baseline
//! regression.

use datalens_analyze::report::{self, Report};
use datalens_analyze::{analyze_root, diag, dump_callgraph, find_workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
datalens-analyze — workspace lint & concurrency-audit engine

USAGE:
    datalens-analyze [--workspace] [--root DIR] [--baseline FILE]
                     [--write-baseline] [--list-rules]
                     [--dump-callgraph] [--explain RULE]

OPTIONS:
    --workspace        analyse every crate src tree under the workspace
                       root (default when no mode is given)
    --root DIR         workspace root (default: walk up from the current
                       directory to the first [workspace] Cargo.toml)
    --baseline FILE    compare findings against a committed baseline;
                       exit 2 only if a (rule, area) bucket grew
    --write-baseline   write the current counts to the baseline file
                       (requires --baseline) and exit 0
    --list-rules       print the rule catalog and exit
    --dump-callgraph   print the resolved workspace call graph as
                       deterministic JSON (name-sorted, byte-identical
                       across runs) and exit
    --explain RULE     print the long-form explanation of one rule and
                       exit

Without --baseline the gate is strict: any finding exits 2.";

struct Opts {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    list_rules: bool,
    dump_callgraph: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        baseline: None,
        write_baseline: false,
        list_rules: false,
        dump_callgraph: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {} // the only mode; accepted for clarity
            "--root" => {
                let v = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline needs a file path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--dump-callgraph" => opts.dump_callgraph = true,
            "--explain" => {
                let v = args.next().ok_or("--explain needs a rule id")?;
                opts.explain = Some(v);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    if opts.write_baseline && opts.baseline.is_none() {
        return Err("--write-baseline requires --baseline FILE".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;

    if opts.list_rules {
        for rule in diag::RULES {
            println!(
                "{:<28} {:<8} {}",
                rule.id,
                rule.severity.as_str(),
                rule.summary
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(rule) = &opts.explain {
        let Some(text) = diag::explain(rule) else {
            return Err(format!(
                "unknown rule `{rule}` — run --list-rules for the catalog"
            ));
        };
        let info = diag::rule_info(rule).expect("explained rules are in the catalog");
        println!("{} ({})", info.id, info.severity.as_str());
        println!();
        println!("{text}");
        return Ok(ExitCode::SUCCESS);
    }

    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml found above the current directory")?
        }
    };

    if opts.dump_callgraph {
        let json =
            dump_callgraph(&root).map_err(|e| format!("analysing {}: {e}", root.display()))?;
        print!("{json}");
        return Ok(ExitCode::SUCCESS);
    }

    let analysis = analyze_root(&root).map_err(|e| format!("analysing {}: {e}", root.display()))?;
    for d in &analysis.diagnostics {
        println!("{d}");
    }
    let current = Report::build(&analysis.diagnostics);
    println!(
        "datalens-analyze: {} finding(s) in {} file(s)",
        analysis.diagnostics.len(),
        analysis.files_scanned
    );

    let Some(baseline_path) = &opts.baseline else {
        // Strict mode: any finding fails.
        return Ok(if analysis.diagnostics.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        });
    };

    if opts.write_baseline {
        std::fs::write(baseline_path, current.to_json())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!("wrote baseline to {}", baseline_path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = Report::parse(&text)?;
    let gate = report::compare(&current, &baseline);

    if !gate.passed() {
        eprintln!(
            "baseline gate FAILED — new findings over {}:",
            baseline_path.display()
        );
        for d in &gate.regressions {
            eprintln!(
                "  {} in {}: {} (baseline {})",
                d.rule, d.area, d.current, d.baseline
            );
        }
        eprintln!(
            "fix the new findings, or suppress with `// lint:allow(<rule>): <reason>` \
             where the invariant is documented"
        );
        return Ok(ExitCode::from(2));
    }
    if !gate.improvements.is_empty() {
        println!("baseline ratchet: counts went down — lock it in:");
        for d in &gate.improvements {
            println!(
                "  {} in {}: {} (baseline {})",
                d.rule, d.area, d.current, d.baseline
            );
        }
        println!(
            "run `cargo run -p datalens-analyze -- --workspace --baseline {} --write-baseline`",
            baseline_path.display()
        );
    }
    println!("baseline gate passed");
    Ok(ExitCode::SUCCESS)
}

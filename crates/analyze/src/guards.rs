//! Brace-scoped guard-liveness tracking: where is a `MutexGuard` /
//! `RwLockReadGuard` / `RwLockWriteGuard` live?
//!
//! An acquisition is a `.lock()` / `.read()` / `.write()` call with
//! empty argument parens (the same shape the lock-ordering rule keys
//! on). A `let`-bound guard lives to the end of its enclosing block,
//! truncated at an explicit `drop(guard)`; a guard that stays a
//! temporary inside a larger expression lives to the end of that
//! statement. The tracker is shared by `lock-ordering` (hold-span
//! edges) and `blocking-while-lock-held` (guard-live call sites).

use crate::lexer::SourceFile;
use crate::rules::{find_all, is_ident_byte};

/// One live guard region inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardSpan {
    /// The `let` binding name, when the guard is named.
    pub var: Option<String>,
    /// Last path segment of the lock receiver (`self.q.lock()` → `q`).
    pub lock: String,
    /// Byte offset of the acquiring `.` token.
    pub start: usize,
    /// Byte offset past which the guard is no longer held.
    pub end: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    pub col: u32,
}

/// All guard spans in the byte range `body` of `file`, offset-sorted.
/// Test lines are skipped.
pub fn guard_spans(file: &SourceFile, body: (usize, usize)) -> Vec<GuardSpan> {
    let scrub = &file.scrubbed;
    let b = scrub.as_bytes();
    let mut out = Vec::new();
    for pat in [".lock()", ".read()", ".write()"] {
        for off in find_all(&scrub[body.0..=body.1.min(scrub.len() - 1)], pat) {
            let off = off + body.0;
            let (line, col) = file.line_col(off);
            if file.is_test_line(line) {
                continue;
            }
            let Some(lock) = receiver_name(b, off) else {
                continue;
            };
            let (var, end) = hold_span(b, off);
            out.push(GuardSpan {
                var,
                lock,
                start: off,
                end: end.min(body.1 + 1),
                line,
                col,
            });
        }
    }
    out.sort_by_key(|s| s.start);
    out
}

/// The guards live at `offset` (strictly inside their spans, past the
/// acquiring call itself).
pub fn live_at(spans: &[GuardSpan], offset: usize) -> Vec<&GuardSpan> {
    spans
        .iter()
        .filter(|s| offset > s.start + ".lock()".len().min(6) && offset < s.end)
        .collect()
}

/// Walk back over `[A-Za-z0-9_:.]` from the `.` of `.lock()` and name
/// the receiver by its last path segment. `None` for unnameable
/// receivers (method-call chains ending in `)`).
pub(crate) fn receiver_name(b: &[u8], dot: usize) -> Option<String> {
    let mut start = dot;
    while start > 0 {
        let c = b[start - 1];
        if is_ident_byte(c) || c == b':' || c == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    let recv = std::str::from_utf8(&b[start..dot]).ok()?;
    let name = recv.rsplit(['.', ':']).find(|s| !s.is_empty())?;
    if name == "self" || name.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name.to_string())
}

/// Compute the binding name (when `let`-bound) and the byte offset
/// where the guard acquired at `dot` stops being held.
pub(crate) fn hold_span(b: &[u8], dot: usize) -> (Option<String>, usize) {
    // Find the statement start: nearest `;`, `{` or `}` going back.
    let mut stmt_start = 0;
    let mut k = dot;
    while k > 0 {
        match b[k - 1] {
            b';' | b'{' | b'}' => {
                stmt_start = k;
                break;
            }
            _ => k -= 1,
        }
    }
    let head = std::str::from_utf8(&b[stmt_start..dot]).unwrap_or("");
    let head = head.trim_start();
    let mut guard_var = head.strip_prefix("let ").map(|rest| {
        let rest = rest.trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        rest.bytes()
            .take_while(|&c| is_ident_byte(c))
            .map(char::from)
            .collect::<String>()
    });

    // The binding holds the guard only when the acquisition *ends* the
    // initializer. A chained call or enclosing expression —
    // `sessions.read().get(…)`, `mem::take(&mut *pumps.lock())` — binds
    // the consumed value; the guard is a temporary that dies with the
    // statement.
    if guard_var.is_some() {
        let mut j = dot;
        while j < b.len() && b[j] != b'(' {
            j += 1;
        }
        let mut after = j + 2; // empty arg parens by construction
        loop {
            while after < b.len() && b[after].is_ascii_whitespace() {
                after += 1;
            }
            // `.unwrap()` / `.expect(…)` on a std::sync lock still
            // yields the guard into the binding — skip over them.
            let rest = &b[after.min(b.len())..];
            let skip = if rest.starts_with(b".unwrap(") {
                Some(after + ".unwrap".len())
            } else if rest.starts_with(b".expect(") {
                Some(after + ".expect".len())
            } else {
                None
            };
            match skip {
                Some(open) => {
                    let mut depth = 0i32;
                    let mut p = open;
                    while p < b.len() {
                        match b[p] {
                            b'(' => depth += 1,
                            b')' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        p += 1;
                    }
                    after = p + 1;
                }
                None => break,
            }
        }
        if b.get(after) != Some(&b';') {
            guard_var = None;
        }
    }

    let let_bound = guard_var.is_some();
    let mut depth = 0i32;
    let mut i = dot;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return (guard_var, i); // enclosing block closes
                }
            }
            b';' if !let_bound && depth <= 0 => return (guard_var, i),
            b'd' => {
                // `drop(guard)` / `mem::drop(guard)` releases early.
                if let Some(var) = guard_var.as_deref() {
                    if !var.is_empty()
                        && b[i..].starts_with(b"drop(")
                        && !is_ident_byte(b[i.saturating_sub(1)])
                    {
                        let arg_start = i + 5;
                        let arg_end = arg_start + var.len();
                        if b.get(arg_start..arg_end) == Some(var.as_bytes())
                            && b.get(arg_end) == Some(&b')')
                        {
                            return (guard_var, i);
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    (guard_var, b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(src: &str) -> Vec<GuardSpan> {
        let f = SourceFile::parse("crates/rest/src/x.rs", src);
        guard_spans(&f, (0, src.len() - 1))
    }

    #[test]
    fn let_bound_guard_lives_to_block_end_and_names_its_binding() {
        let src = "\
fn f(&self) {
    let mut g = self.queue.lock();
    g.push(1);
}
";
        let s = spans(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].var.as_deref(), Some("g"));
        assert_eq!(s[0].lock, "queue");
        let push_at = src.find("g.push").unwrap();
        assert_eq!(live_at(&s, push_at).len(), 1);
    }

    #[test]
    fn drop_and_statement_scope_truncate_liveness() {
        let src = "\
fn f(&self) {
    let g = self.a.lock();
    drop(g);
    self.b.lock().push(1);
    after();
}
";
        let s = spans(src);
        assert_eq!(s.len(), 2);
        let after_at = src.find("after()").unwrap();
        assert!(live_at(&s, after_at).is_empty(), "{s:#?}");
    }

    #[test]
    fn chained_initializers_bind_the_value_not_the_guard() {
        // The binding holds a clone, not the guard: liveness ends with
        // the statement.
        let src = "\
fn f(&self) {
    let slot = self.sessions.read().get(&id).cloned();
    after();
}
fn g(&self) {
    let handles = std::mem::take(&mut *self.pumps.lock());
    after();
}
fn h(&self) {
    let q = self.queue.lock().unwrap();
    after();
}
";
        let s = spans(src);
        assert_eq!(s.len(), 3);
        for (i, bound) in [(0, false), (1, false), (2, true)] {
            assert_eq!(s[i].var.is_some(), bound, "{:#?}", s[i]);
        }
        let after_at = src.find("after()").unwrap();
        assert!(live_at(&s, after_at).is_empty(), "{s:#?}");
        // The std-sync `.unwrap()` chain DOES bind the guard.
        let last_after = src.rfind("after()").unwrap();
        assert_eq!(live_at(&s, last_after).len(), 1);
    }

    #[test]
    fn inner_block_scopes_the_guard() {
        let src = "\
fn f(&self) {
    {
        let g = self.a.lock();
        g.touch();
    }
    after();
}
";
        let s = spans(src);
        let after_at = src.find("after()").unwrap();
        assert!(live_at(&s, after_at).is_empty());
        let touch_at = src.find("g.touch").unwrap();
        assert_eq!(live_at(&s, touch_at).len(), 1);
    }
}

//! `datalens-analyze` — a self-contained workspace lint and
//! concurrency-audit engine.
//!
//! The library lexes Rust sources into a scrubbed, line-anchored view
//! ([`lexer::SourceFile`]), runs a small rule set targeting the
//! failure modes of this repo's serving path (panics in library code,
//! lock-ordering cycles, mixed mutex families, relaxed cross-thread
//! atomics, unbounded queues, metric-naming drift), and reports both
//! human diagnostics and a machine-readable count report
//! ([`report::Report`]) that CI ratchets against a committed baseline
//! (`ANALYZE.json`).
//!
//! Findings are suppressed line-by-line with
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory; a
//! reason-less suppression is itself reported (and not honoured).

pub mod callgraph;
pub mod diag;
pub mod guards;
pub mod index;
pub mod lexer;
pub mod report;
pub mod rules;

use diag::{Diagnostic, Severity, SUPPRESSION_REASON};
use lexer::SourceFile;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Result of analysing a set of sources.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

/// Analyse in-memory sources: `(workspace-relative path, text)` pairs.
/// This is the core entry point; file discovery and IO live in
/// [`analyze_root`].
pub fn analyze_sources<P: AsRef<str>, T: AsRef<str>>(sources: &[(P, T)]) -> Analysis {
    let mut diags = Vec::new();
    let mut files = Vec::with_capacity(sources.len());
    let mut crate_edges: BTreeMap<String, Vec<rules::locks::Edge>> = BTreeMap::new();

    for (path, text) in sources {
        let file = SourceFile::parse(path.as_ref(), text.as_ref());
        rules::panic_in_lib::check(&file, &mut diags);
        rules::locks::check_mixed(&file, &mut diags);
        rules::atomics::check(&file, &mut diags);
        rules::channels::check(&file, &mut diags);
        rules::metrics::check(&file, &mut diags);
        crate_edges
            .entry(rules::crate_of(&file.path))
            .or_default()
            .extend(rules::locks::collect_edges(&file));
        files.push(file);
    }
    for (krate, edges) in &crate_edges {
        rules::locks::analyze_graph(krate, edges, &mut diags);
    }

    // Interprocedural passes: symbol table → call graph → the three
    // graph-backed rules. "Modeled" locks (the blocking rule's extra
    // evidence class) are the ones the lock-ordering edge set already
    // knows about per crate.
    let idx = index::build(&files);
    let cg = callgraph::build(&files, &idx);
    let mut modeled: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();
    for (krate, edges) in &crate_edges {
        let m = modeled.entry(krate.clone()).or_default();
        for e in edges {
            m.insert(e.from.clone());
            m.insert(e.to.clone());
        }
    }
    rules::blocking::check(&files, &idx, &cg, &modeled, &mut diags);
    rules::panic_reach::check(&files, &idx, &cg, &mut diags);
    rules::spawn::check(&files, &idx, &mut diags);

    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    diags.retain(|d| {
        by_path
            .get(d.path.as_str())
            .is_none_or(|f| !is_suppressed(f, d))
    });
    for file in &files {
        for sup in &file.suppressions {
            if sup.reason.is_none() {
                diags.push(Diagnostic {
                    rule: SUPPRESSION_REASON,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: sup.line,
                    col: 1,
                    message: format!(
                        "suppression for `{}` has no reason — write \
                         `// lint:allow({}): <why this is safe>` (reason-less suppressions \
                         are not honoured)",
                        sup.rules.join(", "),
                        sup.rules.join(", "),
                    ),
                });
            }
        }
    }

    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Analysis {
        diagnostics: diags,
        files_scanned: files.len(),
    }
}

/// Does a reasoned suppression cover this diagnostic's rule? See
/// [`SourceFile::suppressed`] for the adjacency semantics.
fn is_suppressed(file: &SourceFile, d: &Diagnostic) -> bool {
    file.suppressed(d.line, d.rule)
}

/// Discover the workspace's analyzable sources under `root`: every
/// `.rs` file in `crates/*/src/` and the root package's `src/`.
/// Shims (vendored third-party stand-ins), `target/`, and test-only
/// trees (`tests/`, `benches/`, `examples/`) are excluded. Paths come
/// back workspace-relative, `/`-separated, sorted.
pub fn discover_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk(&src, root, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "tests" | "benches" | "examples" | "target") {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Discover, read, and analyse the workspace at `root`.
pub fn analyze_root(root: &Path) -> io::Result<Analysis> {
    let rels = discover_files(root)?;
    let mut sources = Vec::with_capacity(rels.len());
    for rel in rels {
        let text = std::fs::read_to_string(root.join(&rel))?;
        sources.push((rel, text));
    }
    Ok(analyze_sources(&sources))
}

/// Build the workspace call graph and serialise it as deterministic
/// JSON (see [`callgraph::dump_json`]) — the `--dump-callgraph` output.
pub fn dump_callgraph(root: &Path) -> io::Result<String> {
    let rels = discover_files(root)?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in rels {
        let text = std::fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::parse(&rel, &text));
    }
    let idx = index::build(&files);
    let cg = callgraph::build(&files, &idx);
    Ok(callgraph::dump_json(&files, &idx, &cg))
}

/// Walk up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::PANIC_IN_LIB;

    #[test]
    fn suppression_with_reason_silences_without_reason_reports() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    // lint:allow(panic-in-lib): slot is filled two lines up
    x.unwrap()
}
fn g(x: Option<u8>) -> u8 {
    x.unwrap() // lint:allow(panic-in-lib)
}
";
        let a = analyze_sources(&[("crates/rest/src/http.rs", src)]);
        // f's unwrap is suppressed; g's is not (no reason) and the
        // reason-less suppression is itself flagged.
        let rules: Vec<&str> = a.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec![SUPPRESSION_REASON, PANIC_IN_LIB],
            "{:#?}",
            a.diagnostics
        );
        assert!(a.diagnostics.iter().all(|d| d.line == 6));
    }

    #[test]
    fn multi_line_justification_reaches_the_guarded_line() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    // lint:allow(panic-in-lib): the slot is always filled — the
    // loop above writes every index exactly once, so an empty
    // slot here is unreachable by construction
    x.unwrap()
}
fn g(x: Option<u8>) -> u8 {
    // lint:allow(panic-in-lib): does not reach past code lines
    let y = x;
    y.unwrap()
}
";
        let a = analyze_sources(&[("crates/rest/src/http.rs", src)]);
        // f's unwrap sits under a three-line justification: covered.
        // g's unwrap has a code line (`let y = x;`) between it and the
        // suppression: not covered.
        assert_eq!(a.diagnostics.len(), 1, "{:#?}", a.diagnostics);
        assert_eq!(a.diagnostics[0].rule, PANIC_IN_LIB);
        assert_eq!(a.diagnostics[0].line, 10);
    }

    #[test]
    fn suppression_only_covers_named_rules() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    x.unwrap() // lint:allow(mixed-mutex): wrong rule named
}
";
        let a = analyze_sources(&[("crates/rest/src/http.rs", src)]);
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].rule, PANIC_IN_LIB);
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let sources = [
            (
                "crates/rest/src/b.rs",
                "fn f(x: Option<u8>) { x.unwrap(); x.unwrap(); }",
            ),
            (
                "crates/rest/src/a.rs",
                "fn f(x: Option<u8>) { x.unwrap(); }",
            ),
        ];
        let a = analyze_sources(&sources);
        let b = analyze_sources(&sources);
        let lines_a: Vec<String> = a.diagnostics.iter().map(|d| d.to_string()).collect();
        let lines_b: Vec<String> = b.diagnostics.iter().map(|d| d.to_string()).collect();
        assert_eq!(lines_a, lines_b);
        assert!(
            lines_a[0].starts_with("crates/rest/src/a.rs"),
            "{lines_a:#?}"
        );
        assert_eq!(a.files_scanned, 2);
    }
}

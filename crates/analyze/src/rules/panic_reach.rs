//! `panic-reachability`: panicking constructs in NON-serving crates
//! that serving roots can reach through the call graph.
//!
//! `panic-in-lib` covers the serving crates themselves; this rule is
//! its interprocedural extension and deliberately disjoint — it only
//! reports sites in non-serving areas, so no site is double-counted.
//!
//! Roots are non-test functions that register routes (`.route(` in the
//! body) or spawn threads (`spawn(`): route-registering functions own
//! their handler closures (a closure's calls attribute to the
//! enclosing fn in the token-level graph), and spawn sites put their
//! target one hop away. A breadth-first walk bounded at [`MAX_HOPS`]
//! marks reachable functions; each panic site inside a reachable
//! non-serving function is reported once, anchored at the site, with
//! the shortest root-to-site call chain printed.
//!
//! A reasoned panic-in-lib allowance comment at the site also clears
//! the reachability finding — a documented invariant holds
//! transitively.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Severity, PANIC_IN_LIB, PANIC_REACHABILITY};
use crate::index::Index;
use crate::lexer::SourceFile;
use crate::rules::panic_in_lib::panic_sites;
use crate::rules::{area_of, is_serving_area};
use std::collections::VecDeque;

/// Call-depth bound for the reachability walk. Deep chains exist, but
/// past a few hops the printed chain stops being actionable and the
/// token-level graph's precision decays.
pub const MAX_HOPS: u32 = 5;

pub fn check(files: &[SourceFile], idx: &Index, cg: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let n = idx.fns.len();
    // Multi-source BFS with parent pointers for chain printing.
    // Deterministic: roots seed in index order, queue is FIFO.
    let mut dist: Vec<Option<(u32, Option<usize>)>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (fi, fdef) in idx.fns.iter().enumerate() {
        if fdef.is_test {
            continue;
        }
        let body = body_text(&files[fdef.file], fdef.body);
        if body.contains(".route(") || body.contains("spawn(") {
            dist[fi] = Some((0, None));
            queue.push_back(fi);
        }
    }
    while let Some(u) = queue.pop_front() {
        let (d, _) = dist[u].expect("queued fns have a distance");
        if d >= MAX_HOPS {
            continue;
        }
        for c in &cg.calls[u] {
            if dist[c.to].is_none() && !idx.fns[c.to].is_test {
                dist[c.to] = Some((d + 1, Some(u)));
                queue.push_back(c.to);
            }
        }
    }

    // Group fns by file so each file is site-scanned exactly once, and
    // each site attributes to its *innermost* enclosing fn (a panic in
    // a nested fn must not count against an outer fn that never calls
    // it).
    let mut fns_by_file: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
    for (fi, fdef) in idx.fns.iter().enumerate() {
        fns_by_file[fdef.file].push(fi);
    }
    for (file_i, file) in files.iter().enumerate() {
        if is_serving_area(&area_of(&file.path)) {
            continue; // panic-in-lib's domain
        }
        if fns_by_file[file_i].is_empty() {
            continue;
        }
        let end = file.scrubbed.len().saturating_sub(1);
        for site in panic_sites(file, (0, end)) {
            let owner = fns_by_file[file_i]
                .iter()
                .copied()
                .filter(|&fi| {
                    let b = idx.fns[fi].body;
                    site.offset > b.0 && site.offset < b.1
                })
                .min_by_key(|&fi| idx.fns[fi].body.1 - idx.fns[fi].body.0);
            let Some(fi) = owner else { continue };
            if idx.fns[fi].is_test {
                continue;
            }
            let Some((d, _)) = dist[fi] else { continue };
            if file.suppressed(site.line, PANIC_IN_LIB) {
                continue; // documented invariant holds transitively
            }
            let chain = chain_to(idx, &dist, fi);
            let root = chain.first().cloned().unwrap_or_default();
            let via = if d == 0 {
                "directly in the root".to_string()
            } else {
                format!("via {}", chain.join(" → "))
            };
            diags.push(Diagnostic {
                rule: PANIC_REACHABILITY,
                severity: Severity::Error,
                path: file.path.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} reachable in {} call hop{} from serving root `{}` ({}) — a panic \
                     here unwinds into the serving thread; return a typed error or document \
                     the invariant at this site",
                    site.what,
                    d,
                    if d == 1 { "" } else { "s" },
                    root,
                    via,
                ),
            });
        }
    }
}

/// The root-to-`fi` qualified-name chain recorded by the BFS.
fn chain_to(idx: &Index, dist: &[Option<(u32, Option<usize>)>], mut fi: usize) -> Vec<String> {
    let mut chain = vec![idx.fns[fi].qname.clone()];
    while let Some((_, Some(parent))) = dist[fi] {
        fi = parent;
        chain.push(idx.fns[fi].qname.clone());
    }
    chain.reverse();
    chain
}

fn body_text(file: &SourceFile, body: (usize, usize)) -> &str {
    let end = (body.1 + 1).min(file.scrubbed.len());
    file.scrubbed.get(body.0..end).unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, index};

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, t)| SourceFile::parse(p, t))
            .collect();
        let idx = index::build(&files);
        let cg = callgraph::build(&files, &idx);
        let mut out = Vec::new();
        check(&files, &idx, &cg, &mut out);
        out
    }

    #[test]
    fn expect_behind_a_route_registration_is_reported_with_its_chain() {
        let core = "\
pub struct Ctl;
impl Ctl {
    pub fn profile(&self) -> u8 {
        self.state.profile.as_ref().expect(\"just set\")
    }
}
pub fn tool_router(ctl: &Ctl) {
    router.route(\"/profile\", move || ctl.profile());
}
";
        let d = run(&[("crates/core/src/service.rs", core)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, PANIC_REACHABILITY);
        assert_eq!(d[0].line, 4);
        assert!(
            d[0].message.contains("core::service::tool_router"),
            "{}",
            d[0].message
        );
        assert!(d[0].message.contains("Ctl::profile"), "{}", d[0].message);
    }

    #[test]
    fn unreachable_panics_and_serving_sites_are_not_reported() {
        // `orphan` panics but nothing serving reaches it; the serving
        // crate's own unwrap is panic-in-lib's domain, not this rule's.
        let core = "\
pub fn orphan(x: Option<u8>) -> u8 { x.unwrap() }
";
        let rest = "\
pub fn serve(x: Option<u8>) -> u8 {
    router.route(\"/x\", || 0);
    x.unwrap()
}
";
        let d = run(&[
            ("crates/core/src/table.rs", core),
            ("crates/rest/src/server.rs", rest),
        ]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn suppressed_invariants_hold_transitively_and_hops_are_bounded() {
        let core = "\
pub fn leaf(x: Option<u8>) -> u8 {
    // lint:allow(panic-in-lib): caller fills the slot first
    x.unwrap()
}
pub fn h5(x: Option<u8>) -> u8 { h4(x) }
pub fn h4(x: Option<u8>) -> u8 { h3(x) }
pub fn h3(x: Option<u8>) -> u8 { h2(x) }
pub fn h2(x: Option<u8>) -> u8 { h1(x) }
pub fn h1(x: Option<u8>) -> u8 { deep(x) }
pub fn deep(x: Option<u8>) -> u8 { x.expect(\"six hops out\") }
";
        let rest = "\
pub fn serve(x: Option<u8>) {
    std::thread::spawn(move || { leaf(x); h5(x); });
}
";
        let d = run(&[
            ("crates/core/src/table.rs", core),
            ("crates/rest/src/server.rs", rest),
        ]);
        // leaf's unwrap: suppressed invariant, transitively clean.
        // deep's expect: 6 hops from the root — beyond MAX_HOPS.
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn spawn_target_one_hop_out_is_reported_once() {
        let core = "\
pub fn worker_loop(v: &[u8]) -> u8 { v[0] }
";
        let rest = "\
pub fn start(v: Vec<u8>) {
    std::thread::spawn(move || worker_loop(&v));
}
pub fn start_again(v: Vec<u8>) {
    std::thread::spawn(move || worker_loop(&v));
}
";
        let d = run(&[
            ("crates/core/src/table.rs", core),
            ("crates/rest/src/server.rs", rest),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("integer-literal indexing"));
        assert!(d[0].message.contains("1 call hop "), "{}", d[0].message);
    }
}

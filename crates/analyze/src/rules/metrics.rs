//! `metric-naming`: registered metric names must match
//! `^[a-z][a-z0-9_]*(_total|_ms|_bytes)?$` with the suffix agreeing
//! with the instrument kind (counters end `_total`, histograms `_ms` or
//! `_bytes`, gauges carry no counter suffix), and label values must be
//! statically bounded — a `format!` inside a `labeled(…)` call is an
//! unbounded-cardinality red flag.

use crate::diag::{Diagnostic, Severity, METRIC_NAMING};
use crate::lexer::SourceFile;
use crate::rules::find_words;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

const REGISTRATIONS: &[(&str, Kind)] = &[
    ("counter(", Kind::Counter),
    ("gauge(", Kind::Gauge),
    ("histogram(", Kind::Histogram),
    ("latency_histogram(", Kind::Histogram),
];

pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let scrub = &file.scrubbed;
    for &(pat, kind) in REGISTRATIONS {
        for off in find_words(scrub, pat) {
            let (line, col) = file.line_col(off);
            if file.is_test_line(line) {
                continue;
            }
            let open = off + pat.len() - 1;
            let close = matching_paren(scrub.as_bytes(), open);
            // The metric name is the first string literal inside the
            // call. No literal (a definition site, or a variable name
            // forwarded from a validated caller) — nothing to check.
            let Some(name) = file
                .strings
                .iter()
                .find(|s| s.offset > open && s.offset < close)
                .map(|s| s.text.as_str())
            else {
                continue;
            };
            if let Some(err) = name_error(kind, name) {
                diags.push(Diagnostic {
                    rule: METRIC_NAMING,
                    severity: Severity::Warning,
                    path: file.path.clone(),
                    line,
                    col,
                    message: format!("metric name `{name}` {err}"),
                });
            }
        }
    }

    // Label cardinality: `labeled(base, &[(k, v)])` with a `format!`ed
    // value can mint unbounded series.
    for off in find_words(scrub, "labeled(") {
        let (line, col) = file.line_col(off);
        if file.is_test_line(line) {
            continue;
        }
        let open = off + "labeled(".len() - 1;
        let close = matching_paren(scrub.as_bytes(), open);
        if !find_words(&scrub[open..close], "format!").is_empty() {
            diags.push(Diagnostic {
                rule: METRIC_NAMING,
                severity: Severity::Warning,
                path: file.path.clone(),
                line,
                col,
                message: "`format!` inside `labeled(…)` — label values must come from a \
                          statically bounded set, not free-form interpolation"
                    .to_string(),
            });
        }
    }
}

/// Offset of the `)` matching the `(` at `open` (or end of file).
fn matching_paren(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// `None` if the name is valid for `kind`, else the complaint.
fn name_error(kind: Kind, name: &str) -> Option<&'static str> {
    let mut bytes = name.bytes();
    let charset_ok = matches!(bytes.next(), Some(b'a'..=b'z'))
        && bytes.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_');
    if !charset_ok {
        return Some("must match ^[a-z][a-z0-9_]*(_total|_ms|_bytes)?$");
    }
    match kind {
        Kind::Counter if !name.ends_with("_total") => Some("is a counter and must end in `_total`"),
        Kind::Histogram if !(name.ends_with("_ms") || name.ends_with("_bytes")) => {
            Some("is a histogram and must end in `_ms` or `_bytes`")
        }
        Kind::Gauge if name.ends_with("_total") => {
            Some("is a gauge — the `_total` suffix is reserved for counters")
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/rest/src/server.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn kind_suffixes_enforced() {
        let src = "\
fn f(m: &Registry) {
    m.counter(\"http_requests_total\");
    m.counter(\"http_requests\");
    m.gauge(\"jobs_running\");
    m.gauge(\"jobs_running_total\");
    m.latency_histogram(\"http_request_ms\");
    m.histogram(\"payload_size\", &BOUNDS);
}
";
        let d = run(src);
        assert_eq!(d.len(), 3, "{d:#?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("_total"));
        assert_eq!(d[1].line, 5);
        assert_eq!(d[2].line, 7);
    }

    #[test]
    fn charset_violations_flagged() {
        let d = run("fn f(m: &Registry) { m.counter(\"HTTP-Requests_total\"); }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("must match"));
    }

    #[test]
    fn definition_sites_and_variables_skipped() {
        // No string literal in the call → nothing to validate.
        let src = "pub fn counter(&self, name: &str) -> Arc<Counter> { self.family(name) }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn format_in_labeled_is_unbounded_cardinality() {
        let d = run("fn f() { let n = labeled(\"http_requests_total\", &[(\"path\", &format!(\"{p}\"))]); }");
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("statically bounded"));
        let d = run("fn f() { let n = labeled(\"http_requests_total\", &[(\"code\", \"200\")]); }");
        assert!(d.is_empty(), "{d:#?}");
    }
}

//! The rule set. Each rule scans a [`SourceFile`](crate::lexer::SourceFile)'s
//! scrubbed text (comments and literal bodies blanked) and pushes
//! line-anchored [`Diagnostic`](crate::diag::Diagnostic)s; `lock-ordering`
//! additionally aggregates acquisition edges per crate before reporting.

pub mod atomics;
pub mod blocking;
pub mod channels;
pub mod locks;
pub mod metrics;
pub mod panic_in_lib;
pub mod panic_reach;
pub mod spawn;

/// The baseline-report *area* a file belongs to. Crates are one area
/// each, except `crates/core`, whose serving-path submodules (`jobs`,
/// `engine`) are tracked separately so their counts can ratchet to zero
/// independently of the rest of the core crate.
pub fn area_of(path: &str) -> String {
    if path.starts_with("crates/core/src/jobs") {
        return "crates/core/src/jobs".to_string();
    }
    if path.starts_with("crates/core/src/engine") {
        return "crates/core/src/engine".to_string();
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            return format!("crates/{}", &rest[..slash]);
        }
    }
    "src".to_string()
}

/// The crate a file belongs to — the node-grouping key for the
/// per-crate lock-acquisition graph.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            return format!("crates/{}", &rest[..slash]);
        }
    }
    "src".to_string()
}

/// Serving-path areas: code on the request/job hot path, where a panic
/// kills a worker and an unbounded queue is a memory bomb. `panic-in-lib`
/// and `bounded-channel-discipline` are scoped to these.
pub fn is_serving_area(area: &str) -> bool {
    matches!(
        area,
        "crates/rest"
            | "crates/obs"
            | "crates/health"
            | "crates/core/src/jobs"
            | "crates/core/src/engine"
    )
}

/// Is `b` an identifier byte (`[A-Za-z0-9_]`)?
pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of every non-overlapping occurrence of `needle` in
/// `hay`. Byte-based so offsets are safe regardless of UTF-8 content.
pub(crate) fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let h = hay.as_bytes();
    let n = needle.as_bytes();
    let mut out = Vec::new();
    if n.is_empty() || n.len() > h.len() {
        return out;
    }
    let mut i = 0;
    while i + n.len() <= h.len() {
        if &h[i..i + n.len()] == n {
            out.push(i);
            i += n.len();
        } else {
            i += 1;
        }
    }
    out
}

/// Like [`find_all`], but requires the match to start at a word
/// boundary (previous byte is not an identifier byte).
pub(crate) fn find_words(hay: &str, word: &str) -> Vec<usize> {
    let h = hay.as_bytes();
    find_all(hay, word)
        .into_iter()
        .filter(|&off| off == 0 || !is_ident_byte(h[off - 1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_split_core_serving_submodules() {
        assert_eq!(area_of("crates/rest/src/http.rs"), "crates/rest");
        assert_eq!(
            area_of("crates/core/src/jobs/queue.rs"),
            "crates/core/src/jobs"
        );
        assert_eq!(
            area_of("crates/core/src/engine/mod.rs"),
            "crates/core/src/engine"
        );
        assert_eq!(area_of("crates/core/src/table.rs"), "crates/core");
        assert_eq!(area_of("src/main.rs"), "src");
        assert!(is_serving_area("crates/rest"));
        assert!(is_serving_area("crates/health"));
        assert!(!is_serving_area("crates/core"));
        assert_eq!(crate_of("crates/core/src/jobs/queue.rs"), "crates/core");
    }

    #[test]
    fn word_search_respects_boundaries() {
        assert_eq!(find_words("load overload load", "load"), vec![0, 14]);
        assert_eq!(find_all("aaa", "aa"), vec![0]);
    }
}

//! `blocking-while-lock-held`: a call path from a site where a guard
//! is live into a blocking operation.
//!
//! Blocking operations (the model): `thread::sleep`, `Condvar::wait` /
//! `wait_timeout` / `wait_while`, bounded-channel `.send(…)` /
//! `.recv()` / `.recv_timeout(…)`, `JoinHandle::join` (empty-paren
//! `.join()`), socket/stream I/O (`.write_all`, `.read_exact`,
//! `.read_until`, `.read_line`, `.write_fmt`, `.flush()`), and —
//! through call edges only — acquiring another lock that the
//! lock-ordering graph models (a lock held across other acquisitions
//! somewhere in its crate). Same-function nested acquisitions stay the
//! lock-ordering rule's domain and are not re-reported here.
//!
//! Scope: the guard-live site and the entire call path must lie in the
//! serving crates (`rest`, `obs`, `core::jobs`, `core::engine`) —
//! blocking buried inside non-serving dependency crates is a
//! documented false-negative class (DESIGN.md).
//!
//! Exemption: waiting on a condvar with the **only** live guard is the
//! condvar protocol itself (the wait atomically releases that guard) —
//! `cv.wait(&mut g)` with just `g` live is clean, but the same wait
//! with a second guard live is reported.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Severity, BLOCKING_WHILE_LOCK_HELD};
use crate::guards::{self, GuardSpan};
use crate::index::Index;
use crate::lexer::{SourceFile, TokKind, Token};
use crate::rules::{area_of, crate_of, is_serving_area};
use std::collections::{BTreeMap, BTreeSet};

/// Why a function (transitively) blocks.
#[derive(Debug, Clone)]
enum Why {
    /// A blocking primitive right here.
    Direct { what: String, line: u32 },
    /// Acquires a modeled lock right here.
    Lock { name: String, line: u32 },
    /// A call into a blocking callee.
    Via { callee: usize },
}

/// One blocking-primitive site.
struct Prim {
    offset: usize,
    line: u32,
    what: String,
    /// Identifier arguments of a condvar wait (for the own-guard
    /// exemption); `None` for every other primitive.
    wait_args: Option<BTreeSet<String>>,
}

pub fn check(
    files: &[SourceFile],
    idx: &Index,
    cg: &CallGraph,
    modeled: &BTreeMap<String, BTreeSet<String>>,
    diags: &mut Vec<Diagnostic>,
) {
    let n = idx.fns.len();
    // Which fns are in scope (serving area, non-test)?
    let serving: Vec<bool> = idx
        .fns
        .iter()
        .map(|f| !f.is_test && is_serving_area(&area_of(&files[f.file].path)))
        .collect();

    // Per-fn primitives and modeled-lock acquisitions.
    let mut prims: Vec<Vec<Prim>> = Vec::with_capacity(n);
    let mut lock_sites: Vec<Vec<(String, u32)>> = Vec::with_capacity(n);
    for (fi, fdef) in idx.fns.iter().enumerate() {
        if !serving[fi] {
            prims.push(Vec::new());
            lock_sites.push(Vec::new());
            continue;
        }
        let file = &files[fdef.file];
        prims.push(find_prims(file, fdef.body));
        let kr = crate_of(&file.path);
        let model = modeled.get(&kr);
        let locks = guards::guard_spans(file, fdef.body)
            .into_iter()
            .filter(|g| model.is_some_and(|m| m.contains(&g.lock)))
            .map(|g| (g.lock, g.line))
            .collect();
        lock_sites.push(locks);
    }

    // Fixed point: does fn f block when called? Seed with direct
    // evidence, then pull evidence across call edges until stable.
    // Deterministic: fns in index order, calls in offset order.
    let mut why: Vec<Option<Why>> = (0..n)
        .map(|fi| {
            if let Some(p) = prims[fi].first() {
                Some(Why::Direct {
                    what: p.what.clone(),
                    line: p.line,
                })
            } else {
                lock_sites[fi].first().map(|(name, line)| Why::Lock {
                    name: name.clone(),
                    line: *line,
                })
            }
        })
        .collect();
    loop {
        let mut changed = false;
        for fi in 0..n {
            if why[fi].is_some() || !serving[fi] {
                continue;
            }
            for c in &cg.calls[fi] {
                if serving[c.to] && why[c.to].is_some() {
                    why[fi] = Some(Why::Via { callee: c.to });
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Report guard-live sites whose call (or inline primitive) blocks.
    for (fi, fdef) in idx.fns.iter().enumerate() {
        if !serving[fi] {
            continue;
        }
        let file = &files[fdef.file];
        let spans = guards::guard_spans(file, fdef.body);
        if spans.is_empty() {
            continue;
        }
        let mut reported: BTreeSet<usize> = BTreeSet::new();

        // Inline primitives under a live guard.
        for p in &prims[fi] {
            let live = guards::live_at(&spans, p.offset);
            let offenders: Vec<&GuardSpan> = match &p.wait_args {
                // Own-guard condvar waits are the protocol; a *different*
                // live guard makes the wait a hazard.
                Some(args) => live
                    .into_iter()
                    .filter(|g| g.var.as_ref().is_none_or(|v| !args.contains(v)))
                    .collect(),
                None => live,
            };
            let Some(g) = offenders.first() else { continue };
            if reported.insert(p.offset) {
                let (line, col) = file.line_col(p.offset);
                diags.push(Diagnostic {
                    rule: BLOCKING_WHILE_LOCK_HELD,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line,
                    col,
                    message: format!(
                        "{} while guard of `{}` (acquired line {}) is live — threads \
                         contending for that lock stall here; narrow the guard scope",
                        p.what, g.lock, g.line
                    ),
                });
            }
        }

        // Calls into (transitively) blocking callees under a live guard.
        for c in &cg.calls[fi] {
            if !serving[c.to] || why[c.to].is_none() {
                continue;
            }
            let live = guards::live_at(&spans, c.offset);
            let Some(g) = live.first() else { continue };
            if reported.insert(c.offset) {
                let (line, col) = file.line_col(c.offset);
                let (chain, sink) = chain_of(idx, &why, c.to);
                diags.push(Diagnostic {
                    rule: BLOCKING_WHILE_LOCK_HELD,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line,
                    col,
                    message: format!(
                        "call into `{}` while guard of `{}` (acquired line {}) is live — \
                         the callee reaches {} via {} — release the guard before this call",
                        idx.fns[c.to].name, g.lock, g.line, sink, chain
                    ),
                });
            }
        }
    }
}

/// Render the blocking evidence chain starting at `fi`:
/// (`a → b → c`, "thread::sleep (x.rs:12)").
fn chain_of(idx: &Index, why: &[Option<Why>], mut fi: usize) -> (String, String) {
    let mut names = vec![idx.fns[fi].qname.clone()];
    for _ in 0..32 {
        match &why[fi] {
            Some(Why::Via { callee }) => {
                fi = *callee;
                names.push(idx.fns[fi].qname.clone());
            }
            Some(Why::Direct { what, line }) => {
                return (names.join(" → "), format!("{what} (line {line})"));
            }
            Some(Why::Lock { name, line }) => {
                return (
                    names.join(" → "),
                    format!("acquisition of modeled lock `{name}` (line {line})"),
                );
            }
            None => break,
        }
    }
    (names.join(" → "), "a blocking operation".to_string())
}

/// Scan one body for blocking primitives via the cached token stream.
fn find_prims(file: &SourceFile, body: (usize, usize)) -> Vec<Prim> {
    let toks = &file.tokens;
    let lo = file.token_at_or_after(body.0);
    let hi = file.token_at_or_after(body.1 + 1);
    let mut out = Vec::new();
    for j in lo..hi {
        if toks[j].kind != TokKind::Ident {
            continue;
        }
        let name = file.tok_text(&toks[j]);
        let next_is = |k: usize, b: u8| toks.get(k).map(|t| t.kind) == Some(TokKind::Punct(b));
        if !next_is(j + 1, b'(') {
            continue;
        }
        let after_dot = j > lo && toks[j - 1].kind == TokKind::Punct(b'.');
        let (line, _) = file.line_col(toks[j].start);
        if file.is_test_line(line) {
            continue;
        }
        let push = |out: &mut Vec<Prim>, what: &str, wait_args: Option<BTreeSet<String>>| {
            out.push(Prim {
                offset: toks[j].start,
                line,
                what: what.to_string(),
                wait_args,
            });
        };
        match name {
            "sleep" => push(&mut out, "`thread::sleep`", None),
            "wait" | "wait_timeout" | "wait_while" if after_dot => {
                let args = call_arg_idents(file, toks, j + 1, hi);
                push(&mut out, "`Condvar::wait`", Some(args));
            }
            "join" if after_dot && next_is(j + 2, b')') => {
                push(&mut out, "`JoinHandle::join`", None);
            }
            "recv" | "recv_timeout" if after_dot => {
                push(&mut out, "bounded-channel `recv`", None);
            }
            "send" if after_dot => push(&mut out, "bounded-channel `send`", None),
            "write_all" | "read_exact" | "read_until" | "read_line" | "write_fmt" if after_dot => {
                push(&mut out, "socket/stream I/O", None);
            }
            "flush" if after_dot && next_is(j + 2, b')') => {
                push(&mut out, "socket/stream I/O", None);
            }
            _ => {}
        }
    }
    out
}

/// Identifier tokens inside the parenthesised argument list opening at
/// token `open`.
fn call_arg_idents(file: &SourceFile, toks: &[Token], open: usize, hi: usize) -> BTreeSet<String> {
    let mut depth = 0i32;
    let mut out = BTreeSet::new();
    for t in &toks[open..hi] {
        match t.kind {
            TokKind::Punct(b'(') => depth += 1,
            TokKind::Punct(b')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident => {
                out.insert(file.tok_text(t).to_string());
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, index};

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, t)| SourceFile::parse(p, t))
            .collect();
        let idx = index::build(&files);
        let cg = callgraph::build(&files, &idx);
        let mut modeled: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &files {
            let kr = crate_of(&f.path);
            for e in crate::rules::locks::collect_edges(f) {
                let m = modeled.entry(kr.clone()).or_default();
                m.insert(e.from.clone());
                m.insert(e.to.clone());
            }
        }
        let mut out = Vec::new();
        check(&files, &idx, &cg, &modeled, &mut out);
        out
    }

    #[test]
    fn sleep_under_guard_is_flagged_inline_and_through_calls() {
        let src = "\
fn pause() { std::thread::sleep(std::time::Duration::from_millis(5)); }
struct S;
impl S {
    fn f(&self) {
        let g = self.state.lock();
        pause();
    }
    fn inline(&self) {
        let g = self.state.lock();
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}
";
        let d = run(&[("crates/rest/src/x.rs", src)]);
        assert_eq!(d.len(), 2, "{d:#?}");
        assert!(d[0].message.contains("pause"), "{}", d[0].message);
        assert!(d[0].message.contains("thread::sleep"), "{}", d[0].message);
        assert!(d[1].message.contains("thread::sleep"));
    }

    #[test]
    fn condvar_wait_on_own_guard_is_the_protocol() {
        let src = "\
struct Q;
impl Q {
    fn pop(&self) {
        let mut g = self.inner.lock();
        while g.is_empty() {
            g = self.cv.wait(g);
        }
    }
    fn bad(&self) {
        let other = self.registry.lock();
        let mut g = self.inner.lock();
        g = self.cv.wait(g);
    }
}
";
        let d = run(&[("crates/rest/src/x.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("registry"), "{}", d[0].message);
    }

    #[test]
    fn drop_before_blocking_and_non_serving_areas_are_clean() {
        let src = "\
fn f(s: &S) {
    let g = s.state.lock();
    drop(g);
    std::thread::sleep(std::time::Duration::from_millis(5));
}
";
        assert!(run(&[("crates/rest/src/x.rs", src)]).is_empty());
        let src = "\
fn f(s: &S) {
    let g = s.state.lock();
    std::thread::sleep(std::time::Duration::from_millis(5));
}
";
        // Non-serving crate: out of scope.
        assert!(run(&[("crates/table/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn cross_crate_chain_reaches_socket_io() {
        let a = "\
pub struct Wire;
impl Wire {
    pub fn push_frame(&self, w: &mut W) { w.write_all(b\"x\"); }
}
";
        let b = "\
use datalens_obs::Wire;
struct Lane;
impl Lane {
    fn tick(&self, wire: &Wire, w: &mut W) {
        let g = self.pumps.lock();
        wire.push_frame(w);
    }
}
";
        let d = run(&[
            ("crates/obs/src/lib.rs", a),
            ("crates/rest/src/server.rs", b),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].path, "crates/rest/src/server.rs");
        assert!(
            d[0].message.contains("obs::Wire::push_frame"),
            "{}",
            d[0].message
        );
        assert!(d[0].message.contains("socket/stream I/O"));
    }

    #[test]
    fn modeled_lock_acquisition_counts_only_through_calls() {
        // `bus` is modeled (held across `subs` in publish_all). The
        // guard-live call into `publish_all` is flagged; the nested
        // acquisition inside `publish_all` itself is lock-ordering's
        // domain and not re-reported here.
        let src = "\
struct B;
impl B {
    fn publish_all(&self) {
        let g = self.bus.lock();
        let s = self.subs.lock();
    }
    fn caller(&self) {
        let g = self.state.lock();
        self.publish_all();
    }
}
";
        let d = run(&[("crates/obs/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("publish_all"), "{}", d[0].message);
        assert!(d[0].message.contains("modeled lock"), "{}", d[0].message);
    }
}

//! `relaxed-cross-thread`: `Ordering::Relaxed` on atomic operations
//! whose result another thread uses for control flow or data
//! visibility. Pure monotonic counters (`fetch_add`/`fetch_sub`, where
//! only the aggregate matters) are allowlisted; everything else —
//! loads, stores, swaps, compare-exchange loops — needs
//! Acquire/Release or an explicit suppression explaining why tearing-
//! free relaxed access is sufficient.

use crate::diag::{Diagnostic, Severity, RELAXED_CROSS_THREAD};
use crate::lexer::SourceFile;
use crate::rules::find_all;
use std::collections::BTreeSet;

/// Atomic method names we attribute an `Ordering::Relaxed` argument to,
/// longest-first so `compare_exchange_weak` wins over its prefix.
const METHODS: &[&str] = &[
    "compare_exchange_weak",
    "compare_exchange",
    "fetch_update",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "store",
    "swap",
    "load",
];

/// Counter-style read-modify-writes where relaxed ordering is the
/// correct default: no other memory is published via the counter.
const ALLOWLIST: &[&str] = &["fetch_add", "fetch_sub"];

pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let mut flagged: BTreeSet<u32> = BTreeSet::new();
    for off in find_all(&file.scrubbed, "Ordering::Relaxed") {
        let (line, col) = file.line_col(off);
        if file.is_test_line(line) || flagged.contains(&line) {
            continue;
        }
        let method = nearest_method(file.scrubbed.as_bytes(), off);
        if let Some(m) = method {
            if ALLOWLIST.contains(&m) {
                continue;
            }
        }
        flagged.insert(line);
        let on = method.map_or_else(|| "an atomic operation".to_string(), |m| format!("`{m}`"));
        diags.push(Diagnostic {
            rule: RELAXED_CROSS_THREAD,
            severity: Severity::Warning,
            path: file.path.clone(),
            line,
            col,
            message: format!(
                "`Ordering::Relaxed` on {on} — cross-thread readers get no happens-before \
                 edge; use Acquire/Release, or suppress with a reason if this value gates \
                 nothing"
            ),
        });
    }
}

/// The nearest atomic method call preceding `off`, within a small
/// window (handles multi-line call expressions).
fn nearest_method(b: &[u8], off: usize) -> Option<&'static str> {
    let start = off.saturating_sub(200);
    let window = &b[start..off];
    let mut best: Option<(usize, &'static str)> = None;
    for &m in METHODS {
        let mb = m.as_bytes();
        if mb.len() + 1 > window.len() {
            continue;
        }
        let mut i = window.len() - mb.len();
        loop {
            // `.method(` — the dot gives the left boundary, the paren
            // terminates the name.
            if window[i..].starts_with(mb)
                && i > 0
                && window[i - 1] == b'.'
                && window.get(i + mb.len()) == Some(&b'(')
            {
                if best.is_none_or(|(p, bm)| i > p || (i == p && m.len() > bm.len())) {
                    best = Some((i, m));
                }
                break;
            }
            if i == 0 {
                break;
            }
            i -= 1;
        }
    }
    best.map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/obs/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn loads_and_stores_flagged_counters_allowed() {
        let src = "\
fn f(a: &AtomicU64) {
    a.fetch_add(1, Ordering::Relaxed);
    a.store(7, Ordering::Relaxed);
    let _ = a.load(Ordering::Relaxed);
    let _ = a.load(Ordering::Acquire);
}
";
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:#?}");
        assert!(d[0].message.contains("`store`"));
        assert!(d[1].message.contains("`load`"));
    }

    #[test]
    fn compare_exchange_attributed_even_multiline() {
        let src = "\
fn f(a: &AtomicU64) {
    a.compare_exchange_weak(
        old,
        new,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
}
";
        let d = run(src);
        // One diagnostic per line, both orderings of the CAS.
        assert_eq!(d.len(), 2, "{d:#?}");
        assert!(d[0].message.contains("compare_exchange_weak"));
    }

    #[test]
    fn test_code_exempt() {
        let src =
            "#[cfg(test)]\nmod t { fn f(a: &AtomicU64) { a.store(1, Ordering::Relaxed); } }\n";
        assert!(run(src).is_empty());
    }
}

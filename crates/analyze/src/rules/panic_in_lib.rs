//! `panic-in-lib`: panicking constructs in non-test library code of
//! serving-path crates. A panic on the serving path kills a worker
//! thread (or poisons a lock); these sites must either return a typed
//! error or document the invariant with a suppression.
//!
//! The site scanner (`panic_sites`) runs over the cached token stream
//! (no re-lexing) and is shared with `panic-reachability`, which uses
//! it on non-serving files the call graph proves reachable.

use crate::diag::{Diagnostic, Severity, PANIC_IN_LIB};
use crate::lexer::{SourceFile, TokKind};
use crate::rules::{area_of, is_serving_area};

/// One panicking construct.
#[derive(Debug, Clone)]
pub(crate) struct PanicSite {
    /// Byte offset of the anchoring token (the `.` of `.unwrap()`, the
    /// macro name, the `[` of an index).
    pub offset: usize,
    pub line: u32,
    pub col: u32,
    /// Short label for chain messages, e.g. "`.unwrap()`".
    pub what: &'static str,
    /// Full stand-alone message (the panic-in-lib wording).
    pub message: String,
}

/// Scan the inclusive byte range `range` of `file` for panicking
/// constructs: `.unwrap()`, `.expect(…)`, the panic macros, and
/// integer-literal indexing. Test lines and `debug_assert` lines are
/// skipped (compiled out of release builds).
pub(crate) fn panic_sites(file: &SourceFile, range: (usize, usize)) -> Vec<PanicSite> {
    let toks = &file.tokens;
    let lo = file.token_at_or_after(range.0);
    let hi = file.token_at_or_after(range.1 + 1);
    let mut out = Vec::new();
    let mut add = |offset: usize, what: &'static str, message: String| {
        let (line, col) = file.line_col(offset);
        if file.is_test_line(line) || file.scrubbed_line(line).contains("debug_assert") {
            return;
        }
        out.push(PanicSite {
            offset,
            line,
            col,
            what,
            message,
        });
    };
    for j in lo..hi {
        let t = &toks[j];
        let next_is = |k: usize, b: u8| toks.get(k).map(|x| x.kind) == Some(TokKind::Punct(b));
        match t.kind {
            TokKind::Ident => {
                let name = file.tok_text(t);
                let after_dot = j > 0 && toks[j - 1].kind == TokKind::Punct(b'.');
                if after_dot && name == "unwrap" && next_is(j + 1, b'(') && next_is(j + 2, b')') {
                    add(
                        toks[j - 1].start,
                        "`.unwrap()`",
                        "`.unwrap()` in non-test library code — return a typed error, or \
                         document the invariant with `// lint:allow(panic-in-lib): <reason>`"
                            .to_string(),
                    );
                } else if after_dot && name == "expect" && next_is(j + 1, b'(') {
                    add(
                        toks[j - 1].start,
                        "`.expect(…)`",
                        "`.expect(…)` in non-test library code — return a typed error, or \
                         document the invariant with `// lint:allow(panic-in-lib): <reason>`"
                            .to_string(),
                    );
                } else if !after_dot
                    && matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                    && next_is(j + 1, b'!')
                {
                    let what = match name {
                        "panic" => "`panic!`",
                        "unreachable" => "`unreachable!`",
                        "todo" => "`todo!`",
                        _ => "`unimplemented!`",
                    };
                    add(t.start, what, format!("{what} in non-test library code"));
                }
            }
            // Integer-literal indexing: `expr[3]` panics out of range.
            // The `[` must directly follow an expression tail (ident,
            // `)`, `]`) — type positions (`[u8; 4]`), attributes, and
            // slice patterns don't.
            TokKind::Punct(b'[') => {
                let expr_tail = j > 0
                    && toks[j - 1].end == t.start
                    && matches!(
                        toks[j - 1].kind,
                        TokKind::Ident | TokKind::Punct(b')') | TokKind::Punct(b']')
                    );
                let literal_index = toks.get(j + 1).is_some_and(|n| {
                    n.kind == TokKind::Num
                        && file
                            .tok_text(n)
                            .bytes()
                            .all(|c| c.is_ascii_digit() || c == b'_')
                });
                if expr_tail && literal_index && next_is(j + 2, b']') {
                    add(
                        t.start,
                        "integer-literal indexing",
                        "integer-literal indexing can panic — use `.get(…)` or document \
                         the invariant"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if !is_serving_area(&area_of(&file.path)) {
        return;
    }
    let end = file.scrubbed.len().saturating_sub(1);
    for site in panic_sites(file, (0, end)) {
        diags.push(Diagnostic {
            rule: PANIC_IN_LIB,
            severity: Severity::Error,
            path: file.path.clone(),
            line: site.line,
            col: site.col,
            message: site.message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_serving_crates() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect(\"set\");
    if a > b { panic!(\"boom\") }
    unreachable!()
}
";
        let d = run("crates/rest/src/http.rs", src);
        assert_eq!(d.len(), 4, "{d:#?}");
        assert_eq!(d[0].line, 2);
        assert!(d.iter().all(|x| x.rule == PANIC_IN_LIB));
    }

    #[test]
    fn non_serving_crates_and_test_code_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(run("crates/core/src/table.rs", src).is_empty());
        let src = "#[cfg(test)]\nmod t { fn f(x: Option<u8>) { x.unwrap(); } }\n";
        assert!(run("crates/rest/src/http.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_and_strings_do_not_match() {
        let src = "fn f(x: Option<u8>) -> u8 { let _ = \".unwrap()\"; x.unwrap_or(0) }";
        assert!(run("crates/obs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn integer_index_flagged_but_types_and_debug_assert_exempt() {
        let src = "\
fn f(v: &[u8; 4], w: &[u8]) -> u8 {
    debug_assert!(w[0] < w[1]);
    v[3]
}
";
        let d = run("crates/obs/src/lib.rs", src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].line, 3);
        assert!(run("crates/obs/src/lib.rs", "type A = [u8; 4];").is_empty());
        // Variable indices are not statically checkable here — exempt.
        assert!(run(
            "crates/obs/src/lib.rs",
            "fn g(v: &[u8], i: usize) -> u8 { v[i] }"
        )
        .is_empty());
    }
}

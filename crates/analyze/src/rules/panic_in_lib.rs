//! `panic-in-lib`: panicking constructs in non-test library code of
//! serving-path crates. A panic on the serving path kills a worker
//! thread (or poisons a lock); these sites must either return a typed
//! error or document the invariant with a suppression.

use crate::diag::{Diagnostic, Severity, PANIC_IN_LIB};
use crate::lexer::SourceFile;
use crate::rules::{area_of, find_all, find_words, is_ident_byte, is_serving_area};

pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if !is_serving_area(&area_of(&file.path)) {
        return;
    }
    let scrub = &file.scrubbed;

    for (pat, what) in [(".unwrap()", "`.unwrap()`"), (".expect(", "`.expect(…)`")] {
        for off in find_all(scrub, pat) {
            push(
                file,
                diags,
                off,
                format!(
                    "{what} in non-test library code — return a typed error, or document the \
                     invariant with `// lint:allow(panic-in-lib): <reason>`"
                ),
            );
        }
    }

    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        for off in find_words(scrub, mac) {
            push(
                file,
                diags,
                off,
                format!("`{mac}` in non-test library code"),
            );
        }
    }

    // Integer-literal indexing: `expr[3]` panics out of range.
    let b = scrub.as_bytes();
    for off in find_all(scrub, "[") {
        if off == 0 {
            continue;
        }
        let prev = b[off - 1];
        if !is_ident_byte(prev) && prev != b')' && prev != b']' {
            continue; // type position (`[u8; 4]`), attribute, slice pattern…
        }
        let mut j = off + 1;
        let mut digits = 0usize;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            if b[j].is_ascii_digit() {
                digits += 1;
            }
            j += 1;
        }
        if digits > 0 && j < b.len() && b[j] == b']' {
            push(
                file,
                diags,
                off,
                "integer-literal indexing can panic — use `.get(…)` or document the invariant"
                    .to_string(),
            );
        }
    }
}

fn push(file: &SourceFile, diags: &mut Vec<Diagnostic>, offset: usize, message: String) {
    let (line, col) = file.line_col(offset);
    if file.is_test_line(line) {
        return;
    }
    // `debug_assert!` bodies are compiled out of release builds; their
    // panics and index expressions are not serving-path hazards.
    if file.scrubbed_line(line).contains("debug_assert") {
        return;
    }
    diags.push(Diagnostic {
        rule: PANIC_IN_LIB,
        severity: Severity::Error,
        path: file.path.clone(),
        line,
        col,
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_serving_crates() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect(\"set\");
    if a > b { panic!(\"boom\") }
    unreachable!()
}
";
        let d = run("crates/rest/src/http.rs", src);
        assert_eq!(d.len(), 4, "{d:#?}");
        assert_eq!(d[0].line, 2);
        assert!(d.iter().all(|x| x.rule == PANIC_IN_LIB));
    }

    #[test]
    fn non_serving_crates_and_test_code_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(run("crates/core/src/table.rs", src).is_empty());
        let src = "#[cfg(test)]\nmod t { fn f(x: Option<u8>) { x.unwrap(); } }\n";
        assert!(run("crates/rest/src/http.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_and_strings_do_not_match() {
        let src = "fn f(x: Option<u8>) -> u8 { let _ = \".unwrap()\"; x.unwrap_or(0) }";
        assert!(run("crates/obs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn integer_index_flagged_but_types_and_debug_assert_exempt() {
        let src = "\
fn f(v: &[u8; 4], w: &[u8]) -> u8 {
    debug_assert!(w[0] < w[1]);
    v[3]
}
";
        let d = run("crates/obs/src/lib.rs", src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].line, 3);
        assert!(run("crates/obs/src/lib.rs", "type A = [u8; 4];").is_empty());
        // Variable indices are not statically checkable here — exempt.
        assert!(run(
            "crates/obs/src/lib.rs",
            "fn g(v: &[u8], i: usize) -> u8 { v[i] }"
        )
        .is_empty());
    }
}

//! `spawn-without-join`: threads spawned on the serving path that the
//! shutdown sequence can never wait for.
//!
//! Two findings, both anchored at the spawn site:
//!
//! - the `JoinHandle` is discarded — `let _ = spawn(…)`, a bare
//!   `spawn(…);` statement, or a chain whose final value is dropped
//!   (`builder.spawn(…).expect("…");`);
//! - the handle *is* kept, but the spawning crate's non-test code
//!   never calls `.join()` anywhere, so nothing can reap it.
//!
//! Spawns inside `thread::scope` are exempt (the scope joins on exit),
//! as are test lines. Detaching on purpose is legitimate — document it
//! with `// lint:allow(spawn-without-join): <why detaching is safe>`.

use crate::diag::{Diagnostic, Severity, SPAWN_WITHOUT_JOIN};
use crate::index::Index;
use crate::lexer::SourceFile;
use crate::rules::{area_of, crate_of, find_all, find_words, is_serving_area};
use std::collections::BTreeSet;

pub fn check(files: &[SourceFile], idx: &Index, diags: &mut Vec<Diagnostic>) {
    // Which crates have join evidence: any non-test `.join()` call.
    let mut joining_crates: BTreeSet<String> = BTreeSet::new();
    for file in files {
        for off in find_all(&file.scrubbed, ".join()") {
            let (line, _) = file.line_col(off);
            if !file.is_test_line(line) {
                joining_crates.insert(crate_of(&file.path));
                break;
            }
        }
    }

    for fdef in &idx.fns {
        if fdef.is_test {
            continue;
        }
        let file = &files[fdef.file];
        if !is_serving_area(&area_of(&file.path)) {
            continue;
        }
        let end = (fdef.body.1 + 1).min(file.scrubbed.len());
        let body = file.scrubbed.get(fdef.body.0..end).unwrap_or("");
        if body.contains("thread::scope") || body.contains("::scope(") {
            continue; // scoped threads join when the scope exits
        }
        let b = file.scrubbed.as_bytes();
        for off in find_words(body, "spawn") {
            let abs = off + fdef.body.0;
            if b.get(abs + 5) != Some(&b'(') {
                continue; // `spawn` not called here (field, import, …)
            }
            let (line, col) = file.line_col(abs);
            if file.is_test_line(line) {
                continue;
            }
            let head = statement_head(b, abs);
            if head.trim_end().ends_with("fn") {
                continue; // a `fn spawn(…)` definition, not a call
            }
            match classify(head, b, abs + 5) {
                Use::Bound => {
                    if !joining_crates.contains(&crate_of(&file.path)) {
                        diags.push(Diagnostic {
                            rule: SPAWN_WITHOUT_JOIN,
                            severity: Severity::Error,
                            path: file.path.clone(),
                            line,
                            col,
                            message: "thread spawned in a crate whose non-test code never \
                                      calls `.join()` — shutdown cannot wait for it; join the \
                                      handle on shutdown or document the detach reason with \
                                      `// lint:allow(spawn-without-join): <reason>`"
                                .to_string(),
                        });
                    }
                }
                Use::Discarded => {
                    diags.push(Diagnostic {
                        rule: SPAWN_WITHOUT_JOIN,
                        severity: Severity::Error,
                        path: file.path.clone(),
                        line,
                        col,
                        message: "thread spawned with its JoinHandle discarded — store the \
                                  handle and join it on shutdown, or document the detach \
                                  reason with `// lint:allow(spawn-without-join): <reason>`"
                            .to_string(),
                    });
                }
            }
        }
    }
}

enum Use {
    /// The handle is bound, stored, passed, or returned.
    Bound,
    /// The handle is dropped on the spot.
    Discarded,
}

/// Scrubbed text from the nearest statement boundary (`;`, `{`, `}`)
/// back to the `spawn` token.
fn statement_head(b: &[u8], spawn_at: usize) -> &str {
    let mut start = 0;
    let mut k = spawn_at;
    while k > 0 {
        match b[k - 1] {
            b';' | b'{' | b'}' => {
                start = k;
                break;
            }
            _ => k -= 1,
        }
    }
    std::str::from_utf8(&b[start..spawn_at]).unwrap_or("")
}

/// Decide what happens to the spawn's return value. `open` is the byte
/// offset of the call's `(`.
fn classify(head: &str, b: &[u8], open: usize) -> Use {
    let trimmed = head.trim();
    if let Some(rest) = trimmed.strip_prefix("let ") {
        let rest = rest.trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        if rest.starts_with("_ ") || rest.starts_with("_=") || rest == "_" {
            return Use::Discarded; // `let _ = spawn(…)`
        }
        return Use::Bound;
    }
    // Strip the call's own path prefix (`std::thread::Builder…`) so the
    // token *before* the callee decides the shape.
    let tail = trimmed
        .trim_end_matches(|c: char| c.is_ascii_alphanumeric() || matches!(c, '_' | ':' | '.'))
        .trim_end();
    if trimmed.contains('=') // assignment to a field/variable
        || tail.ends_with('(') // spawn is an argument: `v.push(spawn(…))`
        || tail.ends_with(',')
        || tail.ends_with("=>")
        || tail.ends_with("return")
    {
        return Use::Bound;
    }
    // Bare expression statement: follow `?` and chained method calls
    // past the spawn call; a terminating `;` drops the final value.
    let mut i = skip_call(b, open);
    loop {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        match b.get(i) {
            Some(b'?') => i += 1,
            Some(b'.') => {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                match b.get(i) {
                    Some(b'(') => i = skip_call(b, i),
                    _ => return Use::Bound, // field access — unusual, stay silent
                }
            }
            Some(b';') => return Use::Discarded,
            _ => return Use::Bound, // tail expression (returned)
        }
    }
}

/// Byte offset just past the `)` matching the `(` at `open`.
fn skip_call(b: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, t)| SourceFile::parse(p, t))
            .collect();
        let idx = index::build(&files);
        let mut out = Vec::new();
        check(&files, &idx, &mut out);
        out
    }

    #[test]
    fn discarded_handles_are_flagged() {
        let src = "\
fn a() { std::thread::spawn(|| work()); }
fn b() { let _ = std::thread::spawn(|| work()); }
fn c() { std::thread::Builder::new().name(n).spawn(|| work()).expect(\"os\"); }
";
        let d = run(&[("crates/rest/src/x.rs", src)]);
        assert_eq!(d.len(), 3, "{d:#?}");
        assert!(d.iter().all(|x| x.rule == SPAWN_WITHOUT_JOIN));
        assert!(d[0].message.contains("discarded"));
    }

    #[test]
    fn bound_handles_are_fine_when_the_crate_joins() {
        let src = "\
struct S { workers: Vec<std::thread::JoinHandle<()>> }
impl S {
    fn start(&mut self) {
        let h = std::thread::spawn(|| work());
        self.workers.push(h);
        self.workers.push(std::thread::spawn(|| work()));
    }
    fn shutdown(&mut self) {
        for t in self.workers.drain(..) { let _ = t.join(); }
    }
}
";
        assert!(run(&[("crates/rest/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn bound_handle_in_a_never_joining_crate_is_flagged() {
        let src = "\
fn start() -> std::thread::JoinHandle<()> {
    let h = std::thread::spawn(|| work());
    h
}
";
        let d = run(&[("crates/obs/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("never"), "{}", d[0].message);
    }

    #[test]
    fn scoped_spawns_tests_and_non_serving_crates_are_exempt() {
        let scoped = "\
fn f() {
    std::thread::scope(|s| {
        s.spawn(|| work());
    });
}
";
        assert!(run(&[("crates/rest/src/x.rs", scoped)]).is_empty());
        let test_only = "#[cfg(test)]\nmod t { fn f() { std::thread::spawn(|| {}); } }\n";
        assert!(run(&[("crates/rest/src/x.rs", test_only)]).is_empty());
        let non_serving = "fn f() { std::thread::spawn(|| work()); }";
        assert!(run(&[("crates/table/src/x.rs", non_serving)]).is_empty());
    }

    #[test]
    fn tail_expression_spawn_is_a_bound_return() {
        let src = "\
fn start() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| work())
}
fn stop(h: std::thread::JoinHandle<()>) { let _ = h.join(); }
";
        assert!(run(&[("crates/rest/src/x.rs", src)]).is_empty());
    }
}

//! `bounded-channel-discipline`: every queue or channel constructed on
//! the serving path must name a capacity. An unbounded queue between a
//! fast producer (accept loop, job submitter) and a slow consumer is a
//! latent memory bomb; making the bound explicit forces the backpressure
//! decision to be written down.

use crate::diag::{Diagnostic, Severity, BOUNDED_CHANNEL};
use crate::lexer::SourceFile;
use crate::rules::{area_of, find_words, is_serving_area};

const PATTERNS: &[(&str, &str)] = &[
    (
        "VecDeque::new()",
        "use `VecDeque::with_capacity(cap)` so the queue bound is explicit",
    ),
    (
        "VecDeque::default()",
        "use `VecDeque::with_capacity(cap)` so the queue bound is explicit",
    ),
    (
        "mpsc::channel()",
        "use `mpsc::sync_channel(cap)` — unbounded channels have no backpressure",
    ),
];

pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if !is_serving_area(&area_of(&file.path)) {
        return;
    }
    for (pat, hint) in PATTERNS {
        for off in find_words(&file.scrubbed, pat) {
            let (line, col) = file.line_col(off);
            if file.is_test_line(line) {
                continue;
            }
            diags.push(Diagnostic {
                rule: BOUNDED_CHANNEL,
                severity: Severity::Warning,
                path: file.path.clone(),
                line,
                col,
                message: format!("`{pat}` constructs an unbounded queue — {hint}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn unbounded_constructions_flagged_bounded_ok() {
        let src = "\
fn f() {
    let a: VecDeque<u8> = VecDeque::new();
    let b: VecDeque<u8> = VecDeque::with_capacity(32);
    let (tx, rx) = mpsc::channel();
    let (tx2, rx2) = mpsc::sync_channel(8);
}
";
        let d = run("crates/rest/src/server.rs", src);
        assert_eq!(d.len(), 2, "{d:#?}");
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 4);
    }

    #[test]
    fn scoped_to_serving_path_and_non_test_code() {
        let src = "fn f() { let q: VecDeque<u8> = VecDeque::new(); }";
        assert!(run("crates/core/src/table.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod t { fn f() { let q: VecDeque<u8> = VecDeque::new(); } }\n";
        assert!(run("crates/rest/src/server.rs", test_src).is_empty());
    }
}

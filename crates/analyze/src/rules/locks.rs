//! Lock discipline: `mixed-mutex` (std::sync and parking_lot in one
//! module) and `lock-ordering` (cycles in the per-crate acquisition
//! graph).
//!
//! The lock-ordering pass is heuristic but conservative in shape: an
//! acquisition is a `.lock()` / `.read()` / `.write()` call with empty
//! argument parens (which excludes `io::Read::read(&mut buf)` and
//! friends); its *hold span* runs to the end of the enclosing block when
//! `let`-bound (truncated at an explicit `drop(guard)`), else to the end
//! of the statement. Every acquisition B inside A's hold span adds edge
//! A→B, keyed by the last path segment of the receiver (`self.inner
//! .queues.lock()` → `queues`). Cycles — including self-edges, i.e.
//! re-acquiring a non-reentrant lock while held — are reported once per
//! distinct node cycle, anchored at the edge that closes it.

use crate::diag::{Diagnostic, Severity, LOCK_ORDERING, MIXED_MUTEX};
use crate::guards::{hold_span, receiver_name};
use crate::lexer::SourceFile;
use crate::rules::{find_all, find_words};
use std::collections::{BTreeMap, BTreeSet};

/// One `A held while acquiring B` observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// Site of the inner (B) acquisition.
    pub path: String,
    pub line: u32,
    pub col: u32,
}

/// `mixed-mutex`: report a module that uses both lock families.
pub fn check_mixed(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let mut std_line = None;
    let mut pl_line = None;
    for line in 1..=file.n_lines() as u32 {
        if file.is_test_line(line) {
            continue;
        }
        let text = file.scrubbed_line(line);
        if std_line.is_none()
            && text.contains("std::sync")
            && ["Mutex", "RwLock", "Condvar"]
                .iter()
                .any(|w| !find_words(text, w).is_empty())
        {
            std_line = Some(line);
        }
        if pl_line.is_none() && text.contains("parking_lot") {
            pl_line = Some(line);
        }
    }
    if let (Some(s), Some(p)) = (std_line, pl_line) {
        let anchor = s.max(p); // the later import is the odd one out
        diags.push(Diagnostic {
            rule: MIXED_MUTEX,
            severity: Severity::Warning,
            path: file.path.clone(),
            line: anchor,
            col: 1,
            message: format!(
                "module mixes std::sync locks (line {s}) with parking_lot (line {p}) — \
                 unify on one family"
            ),
        });
    }
}

/// A single lock acquisition with its computed hold span.
#[derive(Debug)]
struct Acquisition {
    name: String,
    offset: usize,
    /// Byte offset past which the guard is no longer held.
    end: usize,
    line: u32,
    col: u32,
}

/// Extract `A held across B` edges from one file.
pub fn collect_edges(file: &SourceFile) -> Vec<Edge> {
    let scrub = &file.scrubbed;
    let b = scrub.as_bytes();
    let mut sites: Vec<Acquisition> = Vec::new();

    for pat in [".lock()", ".read()", ".write()"] {
        for off in find_all(scrub, pat) {
            let (line, col) = file.line_col(off);
            if file.is_test_line(line) {
                continue;
            }
            let Some(name) = receiver_name(b, off) else {
                continue;
            };
            let (_, end) = hold_span(b, off);
            sites.push(Acquisition {
                name,
                offset: off,
                end,
                line,
                col,
            });
        }
    }
    sites.sort_by_key(|s| s.offset);

    let mut edges = Vec::new();
    for (i, outer) in sites.iter().enumerate() {
        for inner in &sites[i + 1..] {
            if inner.offset >= outer.end {
                break; // sites are offset-sorted
            }
            edges.push(Edge {
                from: outer.name.clone(),
                to: inner.name.clone(),
                path: file.path.clone(),
                line: inner.line,
                col: inner.col,
            });
        }
    }
    edges
}

/// Detect cycles in one crate's acquisition graph and report each
/// distinct node cycle once.
pub fn analyze_graph(krate: &str, edges: &[Edge], diags: &mut Vec<Diagnostic>) {
    // Adjacency with a representative edge per (from, to).
    let mut adj: BTreeMap<&str, BTreeMap<&str, &Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().entry(&e.to).or_insert(e);
    }

    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut path: Vec<&str> = vec![start];
        dfs(start, start, &adj, &mut path, &mut seen, diags, krate, 8);
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    start: &'a str,
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, &'a Edge>>,
    path: &mut Vec<&'a str>,
    seen: &mut BTreeSet<Vec<String>>,
    diags: &mut Vec<Diagnostic>,
    krate: &str,
    depth_left: usize,
) {
    let Some(nexts) = adj.get(node) else { return };
    for (&next, &edge) in nexts {
        if next == start {
            // Cycle closed. Canonicalise: only report from the minimal
            // node so each node cycle is emitted once.
            if start == *path.iter().min().expect("path is non-empty") {
                let key: Vec<String> = {
                    let mut k: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    k.sort();
                    k
                };
                if seen.insert(key) {
                    let chain = path
                        .iter()
                        .chain(std::iter::once(&start))
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(" → ");
                    diags.push(Diagnostic {
                        rule: LOCK_ORDERING,
                        severity: Severity::Error,
                        path: edge.path.clone(),
                        line: edge.line,
                        col: edge.col,
                        message: format!(
                            "lock-ordering cycle in {krate}: {chain} — these locks are \
                             acquired in inconsistent order and can deadlock"
                        ),
                    });
                }
            }
            continue;
        }
        if depth_left == 0 || path.contains(&next) {
            continue;
        }
        path.push(next);
        dfs(start, next, adj, path, seen, diags, krate, depth_left - 1);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(src: &str) -> Vec<(String, String)> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        collect_edges(&f)
            .into_iter()
            .map(|e| (e.from, e.to))
            .collect()
    }

    #[test]
    fn let_bound_guard_spans_block_and_drop_truncates() {
        let src = "\
fn f(&self) {
    let g = self.sessions.lock();
    self.jobs.lock();
}
fn g(&self) {
    let g = self.sessions.lock();
    drop(g);
    self.jobs.lock();
}
";
        assert_eq!(
            edges(src),
            vec![("sessions".to_string(), "jobs".to_string())]
        );
    }

    #[test]
    fn statement_scoped_guard_does_not_leak() {
        let src = "\
fn f(&self) {
    self.sessions.lock().insert(1);
    self.jobs.lock().remove(2);
}
";
        assert!(edges(src).is_empty());
    }

    #[test]
    fn read_write_and_chained_receivers_count() {
        let src = "\
fn f(&self) {
    let s = self.inner.state.read();
    self.inner.log.write().push(1);
}
";
        assert_eq!(edges(src), vec![("state".to_string(), "log".to_string())]);
        // Calls with arguments (io::Read) are not acquisitions.
        assert!(edges("fn f(r: &mut R) { r.read(&mut buf); }").is_empty());
    }

    #[test]
    fn cycle_is_reported_once() {
        let mk = |from: &str, to: &str, line| Edge {
            from: from.into(),
            to: to.into(),
            path: "crates/x/src/lib.rs".into(),
            line,
            col: 1,
        };
        let mut d = Vec::new();
        analyze_graph(
            "crates/x",
            &[mk("a", "b", 2), mk("b", "a", 7), mk("a", "b", 12)],
            &mut d,
        );
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, LOCK_ORDERING);
        assert!(d[0].message.contains("a → b → a"), "{}", d[0].message);
        // Acyclic graph is clean.
        let mut d = Vec::new();
        analyze_graph("crates/x", &[mk("a", "b", 2), mk("b", "c", 3)], &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn self_edge_is_a_double_lock() {
        let src = "\
fn f(&self) {
    let g = self.queues.lock();
    let h = self.queues.lock();
}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let e = collect_edges(&f);
        let mut d = Vec::new();
        analyze_graph("crates/x", &e, &mut d);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("queues → queues"));
    }

    #[test]
    fn mixed_mutex_fires_on_both_families_only() {
        let mut d = Vec::new();
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "use std::sync::{Arc, Mutex};\nuse parking_lot::RwLock;\n",
        );
        check_mixed(&f, &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, MIXED_MUTEX);
        assert_eq!(d[0].line, 2);

        let mut d = Vec::new();
        // std::sync::atomic + parking_lot is fine; so is Arc alone.
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\nuse parking_lot::Mutex;\n",
        );
        check_mixed(&f, &mut d);
        assert!(d.is_empty(), "{d:#?}");
    }
}

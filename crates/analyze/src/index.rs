//! The item indexer: a workspace-wide symbol table of `fn` items built
//! from the cached token streams.
//!
//! Each function gets a qualified name derived from its file's module
//! path (`crates/core/src/jobs/mod.rs` → `core::jobs`) plus the stack
//! of enclosing `mod` / `impl` / `trait` / `fn` scopes, so
//! `core::jobs::JobService::submit` names the method unambiguously.
//! `use` declarations are parsed into a per-file alias map (`Baz` →
//! `foo::Bar` for `use foo::Bar as Baz;`) so the call-graph layer can
//! resolve aliased `Type::method` paths.
//!
//! The indexer is deliberately token-level, not a real parser. Its
//! known limits (documented in DESIGN.md): no macro expansion, no
//! trait-object or generic dispatch, and type names are tracked by
//! their last path segment only.

use crate::lexer::{SourceFile, TokKind, Token};
use std::collections::BTreeMap;

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Fully qualified name, e.g. `core::jobs::JobService::submit`.
    pub qname: String,
    /// Bare name, e.g. `submit`.
    pub name: String,
    /// Enclosing `impl`/`trait` type's last path segment, if any.
    pub type_name: Option<String>,
    /// Index into the file list the index was built from.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Byte span of the body braces in the scrubbed text, inclusive of
    /// both `{` and `}`.
    pub body: (usize, usize),
    /// Inside a `#[cfg(test)]`/`#[test]` region or a tests/ file.
    pub is_test: bool,
}

/// Per-file derived info.
#[derive(Debug, Clone, Default)]
pub struct FileInfo {
    /// Module path derived from the file path, e.g. `core::jobs`.
    pub module: String,
    /// `use` aliases: local name → full imported path.
    pub uses: BTreeMap<String, String>,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Index {
    pub fns: Vec<FnDef>,
    /// Parallel to the file list passed to [`build`].
    pub files: Vec<FileInfo>,
    /// Bare name → fn indices (resolution by unique name).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// (type last segment, method name) → fn indices.
    pub by_type_method: BTreeMap<(String, String), Vec<usize>>,
    /// Qualified name → fn index (first definition wins).
    pub by_qname: BTreeMap<String, usize>,
}

impl Index {
    /// The single fn with this bare `name`, when exactly one non-test
    /// definition exists workspace-wide; `None` on ambiguity.
    pub fn unique_by_name(&self, name: &str) -> Option<usize> {
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }

    /// The single `Type::method` candidate, when unambiguous.
    pub fn unique_method(&self, type_name: &str, method: &str) -> Option<usize> {
        match self
            .by_type_method
            .get(&(type_name.to_string(), method.to_string()))
            .map(Vec::as_slice)
        {
            Some([one]) => Some(*one),
            _ => None,
        }
    }
}

/// Derive the module path from a workspace-relative file path:
/// `crates/<dir>/src/a/b.rs` → `<dir>::a::b`, with `mod.rs`, `lib.rs`,
/// and `main.rs` naming their parent. Root-package files map to `bin`.
pub fn module_path(path: &str) -> String {
    let (krate, rest) = match path.strip_prefix("crates/") {
        Some(r) => match r.split_once('/') {
            Some((dir, tail)) => (dir, tail.strip_prefix("src/").unwrap_or(tail)),
            None => (r, ""),
        },
        None => ("bin", path.strip_prefix("src/").unwrap_or(path)),
    };
    let mut segs = vec![krate.to_string()];
    for part in rest.split('/') {
        let part = part.strip_suffix(".rs").unwrap_or(part);
        if part.is_empty() || matches!(part, "mod" | "lib" | "main") {
            continue;
        }
        segs.push(part.to_string());
    }
    segs.join("::")
}

/// Build the symbol table over already-parsed files. Deterministic:
/// functions appear in (file order, byte offset) order.
pub fn build(files: &[SourceFile]) -> Index {
    let mut idx = Index::default();
    for (fi, file) in files.iter().enumerate() {
        let mut info = FileInfo {
            module: module_path(&file.path),
            ..FileInfo::default()
        };
        scan_file(file, fi, &info.module.clone(), &mut idx, &mut info);
        idx.files.push(info);
    }
    for (i, f) in idx.fns.iter().enumerate() {
        if f.is_test {
            continue; // test fns are indexed but never resolution targets
        }
        idx.by_name.entry(f.name.clone()).or_default().push(i);
        if let Some(t) = &f.type_name {
            idx.by_type_method
                .entry((t.clone(), f.name.clone()))
                .or_default()
                .push(i);
        }
        idx.by_qname.entry(f.qname.clone()).or_insert(i);
    }
    idx
}

/// One entry of the scope stack while walking a file.
struct Scope {
    /// Name segment this scope contributes (empty for plain blocks).
    seg: String,
    /// Is this an `impl`/`trait` scope (its seg is a type name)?
    is_type: bool,
    /// Brace depth just *after* this scope's `{` was consumed.
    open_depth: u32,
}

fn scan_file(file: &SourceFile, fi: usize, module: &str, idx: &mut Index, info: &mut FileInfo) {
    let toks = &file.tokens;
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth: u32 = 0;
    let mut i = 0;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|s| s.open_depth > depth) {
                    scopes.pop();
                }
                i += 1;
            }
            TokKind::Ident => match file.tok_text(&toks[i]) {
                "use" => i = skip_use(file, toks, i, info),
                "mod" => {
                    // `mod name { … }` contributes a segment; `mod name;`
                    // is a file reference the path derivation covers.
                    if let (Some(name), Some(open)) =
                        (ident_at(file, toks, i + 1), body_open(toks, i + 1))
                    {
                        depth += 1;
                        scopes.push(Scope {
                            seg: name.to_string(),
                            is_type: false,
                            open_depth: depth,
                        });
                        i = open + 1;
                    } else {
                        i += 1;
                    }
                }
                "impl" => {
                    if let Some(open) = body_open(toks, i + 1) {
                        let ty = impl_type_name(file, toks, i + 1, open);
                        depth += 1;
                        scopes.push(Scope {
                            seg: ty.clone().unwrap_or_default(),
                            is_type: ty.is_some(),
                            open_depth: depth,
                        });
                        i = open + 1;
                    } else {
                        i += 1;
                    }
                }
                "trait" => {
                    if let (Some(name), Some(open)) =
                        (ident_at(file, toks, i + 1), body_open(toks, i + 1))
                    {
                        depth += 1;
                        scopes.push(Scope {
                            seg: name.to_string(),
                            is_type: true,
                            open_depth: depth,
                        });
                        i = open + 1;
                    } else {
                        i += 1;
                    }
                }
                "fn" => {
                    let Some(name) = ident_at(file, toks, i + 1) else {
                        i += 1; // `fn(u8) -> u8` pointer type
                        continue;
                    };
                    let Some(open) = body_open(toks, i + 2) else {
                        i += 2; // trait method declaration, extern fn
                        continue;
                    };
                    let (line, _) = file.line_col(toks[i].start);
                    let close = match_brace(toks, open);
                    let mut qname = String::from(module);
                    for s in scopes.iter().filter(|s| !s.seg.is_empty()) {
                        qname.push_str("::");
                        qname.push_str(&s.seg);
                    }
                    qname.push_str("::");
                    qname.push_str(name);
                    let type_name = scopes
                        .iter()
                        .rev()
                        .find(|s| s.is_type)
                        .map(|s| s.seg.clone());
                    idx.fns.push(FnDef {
                        qname,
                        name: name.to_string(),
                        type_name,
                        file: fi,
                        line,
                        body: (toks[open].start, toks[close].start),
                        is_test: file.is_test_line(line),
                    });
                    // Walk *into* the body so nested items are indexed.
                    depth += 1;
                    scopes.push(Scope {
                        seg: name.to_string(),
                        is_type: false,
                        open_depth: depth,
                    });
                    i = open + 1;
                }
                _ => i += 1,
            },
            _ => i += 1,
        }
    }
}

fn ident_at<'a>(file: &'a SourceFile, toks: &[Token], i: usize) -> Option<&'a str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| file.tok_text(t))
}

/// From `i`, find the item's body `{` — skipping parens, brackets, and
/// generic `<…>` (where `->` must not close an angle) — or `None` if a
/// `;` ends the item first.
fn body_open(toks: &[Token], i: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
            TokKind::Punct(b'<') if paren == 0 => angle += 1,
            TokKind::Punct(b'>') if paren == 0 => {
                // `->` is not an angle closer.
                let is_arrow = j > 0
                    && toks[j - 1].kind == TokKind::Punct(b'-')
                    && toks[j - 1].end == toks[j].start;
                if !is_arrow {
                    angle -= 1;
                }
            }
            TokKind::Punct(b'{') if paren == 0 && angle <= 0 => return Some(j),
            TokKind::Punct(b';') if paren == 0 && angle <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Token index of the `}` matching the `{` at `open` (last token on
/// truncated input).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// The self-type's last path segment from an `impl` header:
/// `impl<T> Foo<T> {` → `Foo`, `impl Trait for a::b::Bar {` → `Bar`.
fn impl_type_name(file: &SourceFile, toks: &[Token], i: usize, open: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last_ident: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    for j in i..open {
        match toks[j].kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') => {
                let is_arrow = j > 0
                    && toks[j - 1].kind == TokKind::Punct(b'-')
                    && toks[j - 1].end == toks[j].start;
                if !is_arrow {
                    angle -= 1;
                }
            }
            TokKind::Ident if angle == 0 => {
                let text = file.tok_text(&toks[j]);
                match text {
                    "for" => {
                        saw_for = true;
                        after_for = None;
                    }
                    "where" => break,
                    _ => {
                        if saw_for {
                            after_for = Some(text); // last segment of the path
                        } else {
                            last_ident = Some(text);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    after_for.or(last_ident).map(str::to_string)
}

/// Parse one `use …;` into the alias map, returning the token index
/// just past the `;`. Handles nested groups and `as` renames; globs are
/// ignored.
fn skip_use(file: &SourceFile, toks: &[Token], i: usize, info: &mut FileInfo) -> usize {
    let mut j = i + 1;
    let mut prefix: Vec<Vec<String>> = vec![Vec::new()];
    let mut current: Vec<String> = Vec::new();
    let mut pending_alias = false;
    let flush = |info: &mut FileInfo, prefix: &[Vec<String>], current: &mut Vec<String>| {
        if let Some(last) = current.last().cloned() {
            let mut full: Vec<String> = prefix.iter().flatten().cloned().collect();
            full.append(current);
            if last != "*" {
                info.uses.entry(last).or_insert_with(|| full.join("::"));
            }
        }
        current.clear();
    };
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(b';') => {
                flush(info, &prefix, &mut current);
                return j + 1;
            }
            TokKind::Punct(b'{') => {
                prefix.push(std::mem::take(&mut current));
            }
            TokKind::Punct(b'}') => {
                flush(info, &prefix, &mut current);
                prefix.pop();
            }
            TokKind::Punct(b',') => flush(info, &prefix, &mut current),
            TokKind::Punct(b'*') => current.push("*".to_string()),
            TokKind::Ident => {
                let text = file.tok_text(&toks[j]);
                if text == "as" {
                    pending_alias = true;
                } else if pending_alias {
                    // `use a::b as C;` → alias C names the path so far.
                    let full: Vec<String> = prefix
                        .iter()
                        .flatten()
                        .chain(current.iter())
                        .cloned()
                        .collect();
                    info.uses
                        .entry(text.to_string())
                        .or_insert_with(|| full.join("::"));
                    current.clear();
                    pending_alias = false;
                } else {
                    current.push(text.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(sources: &[(&str, &str)]) -> (Vec<SourceFile>, Index) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, t)| SourceFile::parse(p, t))
            .collect();
        let idx = build(&files);
        (files, idx)
    }

    #[test]
    fn module_paths_follow_the_file_tree() {
        assert_eq!(module_path("crates/core/src/jobs/mod.rs"), "core::jobs");
        assert_eq!(module_path("crates/rest/src/server.rs"), "rest::server");
        assert_eq!(module_path("crates/core/src/lib.rs"), "core");
        assert_eq!(module_path("src/main.rs"), "bin");
    }

    #[test]
    fn items_get_qualified_names_through_impl_and_mod() {
        let src = "\
pub struct Svc;
impl Svc {
    pub fn submit(&self) { helper(); }
}
mod inner {
    pub fn helper() {}
}
impl Iterator for Svc {
    fn next(&mut self) -> Option<u8> { None }
}
fn free() {}
";
        let (_, idx) = index_of(&[("crates/core/src/jobs/mod.rs", src)]);
        let qnames: Vec<&str> = idx.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            qnames,
            vec![
                "core::jobs::Svc::submit",
                "core::jobs::inner::helper",
                "core::jobs::Svc::next",
                "core::jobs::free",
            ]
        );
        assert_eq!(idx.fns[0].type_name.as_deref(), Some("Svc"));
        assert_eq!(idx.fns[2].type_name.as_deref(), Some("Svc"));
        assert_eq!(idx.fns[3].type_name, None);
        assert!(idx.unique_method("Svc", "submit").is_some());
        assert!(idx.unique_by_name("helper").is_some());
    }

    #[test]
    fn generics_where_clauses_and_fn_pointers_do_not_confuse_the_scan() {
        let src = "\
fn a<T: Into<String>>(x: T) -> Result<u8, ()> where T: Clone { 0 }
type F = fn(u8) -> u8;
fn b(f: F) -> impl Iterator<Item = u8> { std::iter::empty() }
";
        let (_, idx) = index_of(&[("crates/rest/src/x.rs", src)]);
        let names: Vec<&str> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn use_aliases_and_groups_land_in_the_map() {
        let src = "\
use std::sync::{Arc, Mutex as StdMutex};
use crate::jobs::JobService;
use foo::bar as baz;
fn f() {}
";
        let (_, idx) = index_of(&[("crates/rest/src/x.rs", src)]);
        let uses = &idx.files[0].uses;
        assert_eq!(uses.get("Arc").map(String::as_str), Some("std::sync::Arc"));
        assert_eq!(
            uses.get("StdMutex").map(String::as_str),
            Some("std::sync::Mutex")
        );
        assert_eq!(
            uses.get("JobService").map(String::as_str),
            Some("crate::jobs::JobService")
        );
        assert_eq!(uses.get("baz").map(String::as_str), Some("foo::bar"));
    }

    #[test]
    fn test_fns_are_indexed_but_not_resolution_targets() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn live() {}
}
";
        let (_, idx) = index_of(&[("crates/rest/src/x.rs", src)]);
        assert_eq!(idx.fns.len(), 2);
        assert!(idx.fns[1].is_test);
        // The test double doesn't make `live` ambiguous.
        assert!(idx.unique_by_name("live").is_some());
    }

    #[test]
    fn nested_fns_nest_their_qnames() {
        let src = "fn outer() { fn inner() {} inner(); }";
        let (_, idx) = index_of(&[("crates/rest/src/x.rs", src)]);
        let qnames: Vec<&str> = idx.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(qnames, vec!["rest::x::outer", "rest::x::outer::inner"]);
    }
}

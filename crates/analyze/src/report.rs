//! The machine-readable report (`ANALYZE.json`) and the baseline
//! ratchet.
//!
//! The committed baseline records per-rule, per-area finding counts.
//! The CI gate fails when any (rule, area) bucket *grows* — new
//! findings — while shrinking buckets only produce a reminder to
//! re-write the baseline, so the legacy count ratchets monotonically
//! down. Counts (not fingerprints) keep the format trivially
//! deterministic and merge-friendly.

use crate::diag::{Diagnostic, RULES};
use crate::rules::area_of;
use serde_json::Value;
use std::collections::BTreeMap;

/// Per-rule finding counts, split by area.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// rule id → (area → count). BTreeMaps keep serialisation ordered.
    pub rules: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Report {
    /// Count `diags` into a report.
    pub fn build(diags: &[Diagnostic]) -> Report {
        let mut rules: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for d in diags {
            *rules
                .entry(d.rule.to_string())
                .or_default()
                .entry(area_of(&d.path))
                .or_insert(0) += 1;
        }
        Report { rules }
    }

    pub fn count(&self, rule: &str, area: &str) -> u64 {
        self.rules
            .get(rule)
            .and_then(|areas| areas.get(area))
            .copied()
            .unwrap_or(0)
    }

    pub fn total(&self, rule: &str) -> u64 {
        self.rules
            .get(rule)
            .map(|areas| areas.values().sum())
            .unwrap_or(0)
    }

    /// Serialise deterministically: every catalog rule appears (so a
    /// clean tree commits an all-zero baseline that future findings
    /// diff against), areas sorted, version pinned.
    pub fn to_json(&self) -> String {
        let mut rules = Vec::new();
        for info in RULES {
            let areas = self.rules.get(info.id);
            let total: u64 = areas.map(|a| a.values().sum()).unwrap_or(0);
            let mut entry = vec![("total".to_string(), Value::U64(total))];
            if let Some(areas) = areas {
                let listed: Vec<(String, Value)> = areas
                    .iter()
                    .filter(|(_, &n)| n > 0)
                    .map(|(area, &n)| (area.clone(), Value::U64(n)))
                    .collect();
                if !listed.is_empty() {
                    entry.push(("areas".to_string(), Value::Obj(listed)));
                }
            }
            rules.push((info.id.to_string(), Value::Obj(entry)));
        }
        let doc = Value::Obj(vec![
            ("version".to_string(), Value::U64(1)),
            ("rules".to_string(), Value::Obj(rules)),
        ]);
        let mut text = serde_json::to_string_pretty(&doc).unwrap_or_default();
        text.push('\n');
        text
    }

    /// Parse a baseline previously written by [`Report::to_json`].
    /// Unknown rules are ignored; missing rules count as zero.
    pub fn parse(text: &str) -> Result<Report, String> {
        let doc: Value =
            serde_json::from_str(text).map_err(|e| format!("invalid baseline JSON: {e}"))?;
        match doc.get("version").and_then(Value::as_u64) {
            Some(1) => {}
            other => return Err(format!("unsupported baseline version {other:?}")),
        }
        let mut report = Report::default();
        let Some(rules) = doc.get("rules").and_then(Value::as_object) else {
            return Err("baseline has no `rules` object".to_string());
        };
        for (rule, entry) in rules {
            let mut areas = BTreeMap::new();
            if let Some(listed) = entry.get("areas").and_then(Value::as_object) {
                for (area, n) in listed {
                    areas.insert(
                        area.clone(),
                        n.as_u64()
                            .ok_or_else(|| format!("non-integer count for {rule}/{area}"))?,
                    );
                }
            }
            report.rules.insert(rule.clone(), areas);
        }
        Ok(report)
    }
}

/// One (rule, area) bucket that changed against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    pub rule: String,
    pub area: String,
    pub current: u64,
    pub baseline: u64,
}

/// Outcome of comparing the current tree against the committed
/// baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Gate {
    /// Buckets that grew — these fail CI.
    pub regressions: Vec<Delta>,
    /// Buckets that shrank — the baseline should be re-written to lock
    /// in the improvement.
    pub improvements: Vec<Delta>,
}

impl Gate {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare `current` against `baseline`, per (rule, area) bucket.
pub fn compare(current: &Report, baseline: &Report) -> Gate {
    let mut gate = Gate::default();
    let mut buckets: BTreeMap<(&str, &str), ()> = BTreeMap::new();
    for (rule, areas) in current.rules.iter().chain(baseline.rules.iter()) {
        for area in areas.keys() {
            buckets.insert((rule, area), ());
        }
    }
    for (rule, area) in buckets.keys() {
        let cur = current.count(rule, area);
        let base = baseline.count(rule, area);
        let delta = Delta {
            rule: rule.to_string(),
            area: area.to_string(),
            current: cur,
            baseline: base,
        };
        if cur > base {
            gate.regressions.push(delta);
        } else if cur < base {
            gate.improvements.push(delta);
        }
    }
    gate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Severity, MIXED_MUTEX, PANIC_IN_LIB};

    fn diag(rule: &'static str, path: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn build_counts_by_rule_and_area() {
        let diags = vec![
            diag(PANIC_IN_LIB, "crates/rest/src/http.rs"),
            diag(PANIC_IN_LIB, "crates/rest/src/server.rs"),
            diag(PANIC_IN_LIB, "crates/core/src/jobs/mod.rs"),
            diag(MIXED_MUTEX, "crates/core/src/jobs/mod.rs"),
        ];
        let r = Report::build(&diags);
        assert_eq!(r.count(PANIC_IN_LIB, "crates/rest"), 2);
        assert_eq!(r.count(PANIC_IN_LIB, "crates/core/src/jobs"), 1);
        assert_eq!(r.total(PANIC_IN_LIB), 3);
        assert_eq!(r.count(MIXED_MUTEX, "crates/core/src/jobs"), 1);
    }

    #[test]
    fn json_round_trip_and_all_rules_present() {
        let diags = vec![diag(PANIC_IN_LIB, "crates/rest/src/http.rs")];
        let r = Report::build(&diags);
        let text = r.to_json();
        for info in RULES {
            assert!(text.contains(info.id), "missing {} in {text}", info.id);
        }
        let back = Report::parse(&text).unwrap();
        assert_eq!(back.count(PANIC_IN_LIB, "crates/rest"), 1);
        assert_eq!(back.total(PANIC_IN_LIB), 1);
        // Serialisation is deterministic.
        assert_eq!(text, Report::build(&diags).to_json());
    }

    #[test]
    fn gate_fails_on_growth_notes_shrinkage() {
        let base = Report::parse(
            &Report::build(&[
                diag(PANIC_IN_LIB, "crates/rest/src/http.rs"),
                diag(MIXED_MUTEX, "crates/obs/src/lib.rs"),
            ])
            .to_json(),
        )
        .unwrap();
        // Same panic count, mixed-mutex fixed, new finding in jobs.
        let cur = Report::build(&[
            diag(PANIC_IN_LIB, "crates/rest/src/http.rs"),
            diag(PANIC_IN_LIB, "crates/core/src/jobs/mod.rs"),
        ]);
        let gate = compare(&cur, &base);
        assert!(!gate.passed());
        assert_eq!(gate.regressions.len(), 1);
        assert_eq!(gate.regressions[0].area, "crates/core/src/jobs");
        assert_eq!(gate.improvements.len(), 1);
        assert_eq!(gate.improvements[0].rule, MIXED_MUTEX);

        let gate = compare(&base, &base);
        assert!(gate.passed());
        assert!(gate.improvements.is_empty());
    }

    #[test]
    fn bad_baselines_are_rejected() {
        assert!(Report::parse("{oops").is_err());
        assert!(Report::parse("{\"version\": 2, \"rules\": {}}").is_err());
        assert!(Report::parse("{\"version\": 1}").is_err());
    }
}

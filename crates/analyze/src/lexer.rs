//! A lightweight lexer for Rust source: just enough structure for
//! line-anchored lint rules.
//!
//! The lexer does not build a token tree. It produces a **scrubbed**
//! view of the file — same byte length, same line structure, but with
//! comment text and string/char literal *contents* replaced by spaces —
//! so rules can scan for syntactic patterns (`.unwrap()`, `.lock()`,
//! `Ordering::Relaxed`) without false hits inside strings or comments.
//! Alongside the scrubbed text it extracts:
//!
//! - **string literals** (offset + decoded-enough text), so rules like
//!   `metric-naming` can validate literal arguments;
//! - **suppression comments** — `// lint:allow(rule-id): reason` — with
//!   their mandatory reason;
//! - **test regions**: lines covered by a `#[cfg(test)]` or `#[test]`
//!   item (attribute through the matching closing brace), which most
//!   rules exempt.
//!
//! Handled literal forms: line comments, nested block comments, plain
//! and raw strings (`r"…"`, `r#"…"#`, any hash depth), byte strings,
//! char literals (including escapes), and the char-vs-lifetime
//! ambiguity (`'a'` is a literal, `'a` in `&'a str` is not).

/// A string literal found in the source: byte offset of its opening
/// quote and its raw (unescaped) contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    pub offset: usize,
    pub text: String,
}

/// Coarse token kind — just enough structure for the rules and the
/// interprocedural layer to scan without re-lexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`[A-Za-z_][A-Za-z0-9_]*`).
    Ident,
    /// Numeric literal (digits plus suffix/underscore tail).
    Num,
    /// A single punctuation byte (the byte is `scrubbed[start]`).
    Punct(u8),
}

/// One token of the scrubbed text, by byte span. The token stream is
/// produced once per file at parse time and shared by every rule and by
/// the index/call-graph layer — rules must not re-scan the raw text for
/// structure the stream already carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub start: usize,
    pub end: usize,
    pub kind: TokKind,
}

/// One `// lint:allow(rule, …): reason` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on. It suppresses findings on this
    /// line or — comment-above style — on the next line that carries
    /// code (blank/comment-only lines don't break the link; see the
    /// driver's coverage logic).
    pub line: u32,
    pub rules: Vec<String>,
    /// The text after the closing paren's `:`. Suppressions without a
    /// reason are reported (and not honoured) — see the driver.
    pub reason: Option<String>,
}

/// A lexed source file plus the derived views the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Original text.
    pub text: String,
    /// Same length as `text`: comments and literal bodies blanked.
    pub scrubbed: String,
    /// String literals (offset of the opening quote, contents).
    pub strings: Vec<StrLit>,
    /// Lint suppression comments, in file order.
    pub suppressions: Vec<Suppression>,
    /// The scrubbed text tokenised once, in offset order (the cached
    /// token stream rules and the interprocedural layer slice into).
    pub tokens: Vec<Token>,
    /// Byte offset where each line starts (index 0 = line 1).
    line_starts: Vec<usize>,
    /// `test_lines[i]` — is 1-based line `i + 1` inside test code?
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Lex `text` as the file at `path` (workspace-relative; used for
    /// path-scoped rules and diagnostics).
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let scrub = Scrubber::run(text);
        let line_starts = line_starts(text);
        let n_lines = line_starts.len();
        let tokens = tokenize(&scrub.scrubbed);
        let mut file = SourceFile {
            path: path.replace('\\', "/"),
            text: text.to_string(),
            scrubbed: scrub.scrubbed,
            strings: scrub.strings,
            suppressions: scrub
                .comments
                .iter()
                .filter_map(|c| parse_suppression(c, &line_starts))
                .collect(),
            tokens,
            line_starts,
            test_lines: vec![false; n_lines],
        };
        if is_test_path(&file.path) {
            file.test_lines.iter_mut().for_each(|l| *l = true);
        } else {
            mark_test_regions(&mut file);
        }
        file
    }

    /// 1-based `(line, col)` of a byte offset. The column counts
    /// **characters**, not bytes, so diagnostics stay editor-accurate in
    /// lines containing multibyte UTF-8 (e.g. non-ASCII comments or
    /// string literals earlier on the line).
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = self.line_starts[line];
        // Offsets handed to diagnostics point at ASCII syntax bytes, so
        // the slice below is char-aligned; fall back to the byte column
        // if a caller ever passes a mid-sequence offset.
        let col = match self.text.get(start..offset) {
            Some(prefix) => prefix.chars().count() as u32 + 1,
            None => (offset - start) as u32 + 1,
        };
        (line as u32 + 1, col)
    }

    /// Text of a token (slice of the scrubbed view).
    pub fn tok_text(&self, t: &Token) -> &str {
        &self.scrubbed[t.start..t.end]
    }

    /// Index of the first token starting at or after `offset`
    /// (`tokens.len()` when none) — for slicing the cached stream to a
    /// byte span such as a function body.
    pub fn token_at_or_after(&self, offset: usize) -> usize {
        self.tokens.partition_point(|t| t.start < offset)
    }

    /// Does a **reasoned** suppression for `rule` cover 1-based `line`?
    ///
    /// A suppression applies to its own line (trailing style) or, for
    /// the comment-above style, to the first following line that carries
    /// code — blank and comment-only lines in between don't break the
    /// link, so a multi-line justification still reaches the statement
    /// it guards. Suppressions never cross file boundaries: this method
    /// only consults this file's own comments.
    pub fn suppressed(&self, line: u32, rule: &str) -> bool {
        self.suppressions.iter().any(|s| {
            s.reason.is_some()
                && s.rules.iter().any(|r| r == rule)
                && (s.line == line || self.covers_from_above(s.line, line))
        })
    }

    fn covers_from_above(&self, sup_line: u32, diag_line: u32) -> bool {
        if diag_line <= sup_line || diag_line as usize > self.n_lines() {
            return false;
        }
        // Every line strictly between the suppression and the target
        // must be blank once comments are scrubbed away.
        (sup_line + 1..diag_line).all(|n| self.scrubbed_line(n).trim().is_empty())
    }

    /// Is the 1-based `line` inside a `#[cfg(test)]`/`#[test]` region
    /// (or a tests/benches/examples file)?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Byte range of the 1-based `line` (without the newline).
    pub fn line_span(&self, line: u32) -> (usize, usize) {
        let i = line.saturating_sub(1) as usize;
        let start = self.line_starts[i];
        let end = self
            .line_starts
            .get(i + 1)
            .map(|&n| n.saturating_sub(1))
            .unwrap_or(self.text.len());
        (start, end)
    }

    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The scrubbed text of the 1-based `line`.
    pub fn scrubbed_line(&self, line: u32) -> &str {
        let (s, e) = self.line_span(line);
        &self.scrubbed[s..e]
    }
}

/// Tokenise the scrubbed text. Comments and literal bodies are already
/// spaces, so the stream is pure structure: identifiers, numbers, and
/// single punctuation bytes. Multibyte UTF-8 only survives scrubbing
/// inside identifiers-adjacent positions it can't occupy, so non-ASCII
/// bytes are skipped.
fn tokenize(scrubbed: &str) -> Vec<Token> {
    let b = scrubbed.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 4);
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() || c & 0x80 != 0 {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                start,
                end: i,
                kind: TokKind::Ident,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.') {
                // `1.5` stays one number; `1.max(2)` must not eat the
                // method name — only consume a dot followed by a digit.
                if b[i] == b'.' && !b.get(i + 1).copied().unwrap_or(b' ').is_ascii_digit() {
                    break;
                }
                i += 1;
            }
            out.push(Token {
                start,
                end: i,
                kind: TokKind::Num,
            });
        } else {
            out.push(Token {
                start: i,
                end: i + 1,
                kind: TokKind::Punct(c),
            });
            i += 1;
        }
    }
    out
}

fn is_test_path(path: &str) -> bool {
    let p = format!("/{path}");
    p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/")
}

fn line_starts(text: &str) -> Vec<usize> {
    std::iter::once(0)
        .chain(
            text.bytes()
                .enumerate()
                .filter(|(_, b)| *b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .filter(|&i| i <= text.len().saturating_sub(1) || i == 0)
        .collect()
}

/// A comment's text plus the offset it starts at.
#[derive(Debug)]
struct Comment {
    offset: usize,
    text: String,
}

/// Output of the scrub pass.
struct ScrubOut {
    scrubbed: String,
    strings: Vec<StrLit>,
    comments: Vec<Comment>,
}

/// Byte-level state machine that blanks comments and literal bodies.
struct Scrubber;

impl Scrubber {
    fn run(text: &str) -> ScrubOut {
        let b = text.as_bytes();
        let mut out = Vec::with_capacity(b.len());
        let mut strings = Vec::new();
        let mut comments = Vec::new();
        let mut i = 0;

        // Push `src[i]` as-is if it is a newline (preserve line
        // structure), else a space.
        fn blank(out: &mut Vec<u8>, c: u8) {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }

        while i < b.len() {
            match b[i] {
                b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                    // Line comment (includes doc comments).
                    let start = i;
                    while i < b.len() && b[i] != b'\n' {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                    comments.push(Comment {
                        offset: start,
                        text: text[start..i].to_string(),
                    });
                }
                b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                    // Block comment, nesting tracked.
                    let start = i;
                    let mut depth = 0usize;
                    while i < b.len() {
                        if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                            depth += 1;
                            blank(&mut out, b[i]);
                            blank(&mut out, b[i + 1]);
                            i += 2;
                        } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                            depth -= 1;
                            blank(&mut out, b[i]);
                            blank(&mut out, b[i + 1]);
                            i += 2;
                            if depth == 0 {
                                break;
                            }
                        } else {
                            blank(&mut out, b[i]);
                            i += 1;
                        }
                    }
                    comments.push(Comment {
                        offset: start,
                        text: text[start..i].to_string(),
                    });
                }
                b'r' | b'b' if is_raw_string_start(b, i) => {
                    // Raw (byte) string: r"…", r#"…"#, br#"…"#, any depth.
                    let mut j = i;
                    while b[j] != b'r' {
                        out.push(b[j]); // the `b` prefix
                        j += 1;
                    }
                    out.push(b'r');
                    j += 1;
                    let mut hashes = 0;
                    while b[j] == b'#' {
                        out.push(b'#');
                        hashes += 1;
                        j += 1;
                    }
                    out.push(b'"');
                    let body_start = j + 1;
                    j += 1;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let mut end = b.len();
                    let mut k = j;
                    while k < b.len() {
                        if b[k..].starts_with(&closer) {
                            end = k;
                            break;
                        }
                        k += 1;
                    }
                    strings.push(StrLit {
                        offset: body_start - 1,
                        text: text[body_start..end].to_string(),
                    });
                    for &c in &b[body_start..end] {
                        blank(&mut out, c);
                    }
                    for _ in 0..closer.len().min(b.len() - end) {
                        out.push(b[end]);
                        end += 1;
                    }
                    i = end;
                    continue;
                }
                b'"' => {
                    let start = i;
                    out.push(b'"');
                    i += 1;
                    let body_start = i;
                    while i < b.len() && b[i] != b'"' {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            blank(&mut out, b[i]);
                            blank(&mut out, b[i + 1]);
                            i += 2;
                        } else {
                            blank(&mut out, b[i]);
                            i += 1;
                        }
                    }
                    strings.push(StrLit {
                        offset: start,
                        text: unescape(&text[body_start..i]),
                    });
                    if i < b.len() {
                        out.push(b'"');
                        i += 1;
                    }
                    continue;
                }
                b'\'' => {
                    // Char literal or lifetime.
                    if is_char_literal(b, i) {
                        out.push(b'\'');
                        i += 1;
                        while i < b.len() && b[i] != b'\'' {
                            if b[i] == b'\\' && i + 1 < b.len() {
                                blank(&mut out, b[i]);
                                blank(&mut out, b[i + 1]);
                                i += 2;
                            } else {
                                blank(&mut out, b[i]);
                                i += 1;
                            }
                        }
                        if i < b.len() {
                            out.push(b'\'');
                            i += 1;
                        }
                        continue;
                    }
                    out.push(b'\'');
                    i += 1;
                    continue;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        ScrubOut {
            // Only ASCII bytes were substituted, multi-byte UTF-8
            // sequences pass through untouched — still valid UTF-8.
            scrubbed: String::from_utf8(out).expect("scrub preserves UTF-8"),
            strings,
            comments,
        }
    }
}

/// Is `b[i]` the start of `r"`/`r#`/`br"`/`br#` (a raw string)?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    // Only a prefix at a non-identifier boundary counts (`for r in …`
    // must not trigger on `r"…"`? it would — but `r` followed by a
    // quote IS a raw string in any expression position, so this is
    // right; what must NOT trigger is an identifier *ending* in r).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime). `i` points
/// at the opening quote.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    let Some(&c1) = b.get(i + 1) else {
        return false;
    };
    if c1 == b'\\' {
        return true; // '\n', '\'', '\u{…}'
    }
    if c1 & 0x80 != 0 {
        return true; // multi-byte UTF-8 scalar — lifetimes are ASCII
    }
    // 'x' iff the very next byte closes it; otherwise it is a lifetime
    // ('a, '_, 'static). This deliberately does NOT scan ahead: in
    // `<'a, 'b>` a lookahead would find 'b's quote and misparse.
    b.get(i + 2) == Some(&b'\'')
}

fn unescape(s: &str) -> String {
    // Good enough for metric-name validation: handle the common
    // escapes, pass everything else through.
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Parse a `lint:allow(rule-a, rule-b): reason` comment.
fn parse_suppression(comment: &Comment, line_starts: &[usize]) -> Option<Suppression> {
    let marker = "lint:allow(";
    let at = comment.text.find(marker)?;
    let rest = &comment.text[at + marker.len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix(':')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    let line = match line_starts.binary_search(&comment.offset) {
        Ok(i) => i,
        Err(i) => i - 1,
    } as u32
        + 1;
    Some(Suppression {
        line,
        rules,
        reason,
    })
}

/// Mark the line ranges of `#[cfg(test)]` / `#[test]` items.
fn mark_test_regions(file: &mut SourceFile) {
    let s = file.scrubbed.as_bytes();
    let mut i = 0;
    while i < s.len() {
        if s[i] != b'#' || i + 1 >= s.len() || s[i + 1] != b'[' {
            i += 1;
            continue;
        }
        // Read the bracketed attribute.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < s.len() {
            match s[j] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr = &file.scrubbed[attr_start..=j.min(s.len() - 1)];
        if !is_test_attr(attr) {
            i = j + 1;
            continue;
        }
        // Find the item body: the first `{` before a `;` terminates the
        // item (a `#[cfg(test)] use …;` has no body).
        let mut k = j + 1;
        let mut body_open = None;
        while k < s.len() {
            match s[k] {
                b'{' => {
                    body_open = Some(k);
                    break;
                }
                b';' => break,
                _ => {}
            }
            k += 1;
        }
        let end = match body_open {
            Some(open) => {
                let mut depth = 0usize;
                let mut m = open;
                loop {
                    match s.get(m) {
                        Some(b'{') => depth += 1,
                        Some(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                break m;
                            }
                        }
                        Some(_) => {}
                        None => break s.len() - 1,
                    }
                    m += 1;
                }
            }
            None => k.min(s.len() - 1),
        };
        let (first, _) = file.line_col(attr_start);
        let (last, _) = file.line_col(end);
        for line in first..=last {
            if let Some(slot) = file.test_lines.get_mut(line as usize - 1) {
                *slot = true;
            }
        }
        i = end + 1;
    }
}

/// Does the attribute text mark test-only code? Matches `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[tokio::test]` — any
/// attribute containing `test` as a standalone path segment.
fn is_test_attr(attr: &str) -> bool {
    let bytes = attr.as_bytes();
    let mut from = 0;
    while let Some(at) = attr[from..].find("test") {
        let start = from + at;
        let end = start + "test".len();
        let pre_ok =
            start == 0 || (!bytes[start - 1].is_ascii_alphanumeric() && bytes[start - 1] != b'_');
        let post_ok =
            end >= bytes.len() || (!bytes[end].is_ascii_alphanumeric() && bytes[end] != b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings_but_keeps_offsets() {
        let src = "let a = \"unwrap() inside\"; // .unwrap() in comment\nlet b = 1;\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.scrubbed.len(), src.len());
        assert!(!f.scrubbed.contains("unwrap"), "scrubbed: {}", f.scrubbed);
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].text, "unwrap() inside");
        // Offsets and line structure survive.
        assert_eq!(f.line_col(src.find("let b").unwrap()), (2, 1));
    }

    #[test]
    fn nested_block_comments_scrub_fully() {
        let src = "a /* outer /* inner */ still comment */ b\nc\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.scrubbed.contains("outer"));
        assert!(!f.scrubbed.contains("inner"));
        assert!(!f.scrubbed.contains("still"));
        assert!(f.scrubbed.contains('a'));
        assert!(f.scrubbed.contains('b'));
        assert_eq!(f.scrubbed.len(), src.len());
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r####"let p = r#"has "quotes" and \ backslash"#; let q = 2;"####;
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].text, r#"has "quotes" and \ backslash"#);
        assert!(f.scrubbed.contains("let q = 2"));
        assert!(!f.scrubbed.contains("quotes"));
        // A raw string closer inside the body does not end it early.
        let src = "let s = r##\"inner \"# not the end\"##; let t = 3;";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.strings[0].text, "inner \"# not the end");
        assert!(f.scrubbed.contains("let t = 3"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = 'x'; 'y' }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        // Lifetimes survive scrubbing; char contents are blanked.
        assert!(f.scrubbed.contains("<'a>"));
        assert!(f.scrubbed.contains("&'a str"));
        assert!(!f.scrubbed.contains("'x'"));
        assert!(f.scrubbed.contains("let d ="));
    }

    #[test]
    fn cfg_test_region_spans_the_item_braces() {
        let src = "\
pub fn live() { a.unwrap(); }

#[cfg(test)]
mod tests {
    fn helper() { b.unwrap(); }
}

pub fn also_live() {}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3)); // the attribute line itself
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6)); // closing brace
        assert!(!f.is_test_line(8));
    }

    #[test]
    fn test_attribute_on_fn_is_scoped() {
        let src = "\
#[test]
fn check() {
    x.unwrap();
}
fn live() {}
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(5));
        // `test` must be a whole path segment: `#[testable]` is live.
        let f = SourceFile::parse("x.rs", "#[testable]\nfn a() { b(); }\n");
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn tests_dir_files_are_fully_exempt() {
        let f = SourceFile::parse("tests/integration.rs", "fn x() { y.unwrap(); }\n");
        assert!(f.is_test_line(1));
        let f = SourceFile::parse("crates/x/benches/b.rs", "fn x() {}\n");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn suppressions_parse_rules_and_reason() {
        let src = "\
a.lock(); // lint:allow(lock-ordering): registry lock is leaf-only
// lint:allow(panic-in-lib, mixed-mutex): spawn cannot fail here
b.unwrap();
c.unwrap(); // lint:allow(panic-in-lib)
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.suppressions.len(), 3);
        assert_eq!(f.suppressions[0].line, 1);
        assert_eq!(f.suppressions[0].rules, vec!["lock-ordering"]);
        assert_eq!(
            f.suppressions[0].reason.as_deref(),
            Some("registry lock is leaf-only")
        );
        assert_eq!(f.suppressions[1].rules, vec!["panic-in-lib", "mixed-mutex"]);
        // Reason-less suppression parses with reason: None (the driver
        // rejects it).
        assert_eq!(f.suppressions[2].line, 4);
        assert_eq!(f.suppressions[2].reason, None);
    }

    #[test]
    fn line_col_round_trip() {
        let src = "ab\ncd\nef";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(7), (3, 2));
        assert_eq!(f.n_lines(), 3);
        assert_eq!(f.scrubbed_line(2), "cd");
    }

    #[test]
    fn columns_count_chars_not_bytes_in_multibyte_lines() {
        // "é" is 2 bytes, "→" is 3: byte columns would drift by 3 by
        // the time the offset reaches `x.unwrap()`.
        let src = "fn f() { let é = \"→\"; x.unwrap(); }\n";
        let f = SourceFile::parse("crates/rest/src/http.rs", src);
        let off = src.find("x.unwrap").unwrap() + 1; // the `.`
        let (line, col) = f.line_col(off);
        assert_eq!(line, 1);
        let char_col = src[..off].chars().count() as u32 + 1;
        assert_eq!(col, char_col);
        assert_ne!(col as usize, off + 1, "byte column leaked through");
    }

    #[test]
    fn token_stream_is_structure_only() {
        let src = "let x = a.b_1(\"s\"); // c\n";
        let f = SourceFile::parse("x.rs", src);
        let texts: Vec<&str> = f.tokens.iter().map(|t| f.tok_text(t)).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "b_1", "(", "\"", "\"", ")", ";"]
        );
        assert_eq!(f.tokens[1].kind, TokKind::Ident);
        assert_eq!(f.tokens[2].kind, TokKind::Punct(b'='));
        // Numbers: method calls on literals don't get eaten.
        let f = SourceFile::parse("x.rs", "1.5 + 2.max(3)");
        let texts: Vec<&str> = f.tokens.iter().map(|t| f.tok_text(t)).collect();
        assert_eq!(texts, vec!["1.5", "+", "2", ".", "max", "(", "3", ")"]);
        // token_at_or_after slices by byte span.
        let f = SourceFile::parse("x.rs", "a b c");
        assert_eq!(f.token_at_or_after(1), 1);
        assert_eq!(f.token_at_or_after(2), 1);
        assert_eq!(f.token_at_or_after(5), 3);
    }

    #[test]
    fn suppressed_is_file_local_and_adjacency_scoped() {
        let src = "\
// lint:allow(panic-in-lib): covered below
x.unwrap();
y.unwrap();
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppressed(1, "panic-in-lib"));
        assert!(f.suppressed(2, "panic-in-lib"));
        assert!(!f.suppressed(3, "panic-in-lib"), "leaked past a code line");
        assert!(!f.suppressed(2, "lock-ordering"), "wrong rule");
    }
}

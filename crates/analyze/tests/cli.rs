//! End-to-end tests of the `datalens-analyze` binary: strict-mode gate
//! semantics, the baseline ratchet, and byte-determinism of the report.
//!
//! Each test builds a throwaway fixture workspace under the target tmp
//! dir and drives the real binary via `CARGO_BIN_EXE_datalens-analyze`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_datalens-analyze"))
        .args(args)
        .output()
        .expect("spawn datalens-analyze")
}

/// A fresh fixture workspace with one serving-path crate (`rest`).
fn fixture(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datalens-analyze-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/rest/src")).unwrap();
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .unwrap();
    dir
}

fn write_lib(root: &Path, body: &str) {
    fs::write(root.join("crates/rest/src/lib.rs"), body).unwrap();
}

const CLEAN: &str = "pub fn ok(x: Option<u8>) -> Option<u8> {\n    x\n}\n";
const ONE_UNWRAP: &str = "pub fn boom(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
const TWO_UNWRAPS: &str = "pub fn boom(x: Option<u8>, y: Option<u8>) -> u8 {\n    \
                           x.unwrap() + y.unwrap()\n}\n";

#[test]
fn strict_mode_fails_on_injected_violation_and_passes_clean() {
    let root = fixture("strict");
    let root_s = root.to_str().unwrap();

    write_lib(&root, ONE_UNWRAP);
    let out = run(&["--workspace", "--root", root_s]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "strict mode must fail on a finding"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("panic-in-lib"), "{stdout}");
    assert!(stdout.contains("crates/rest/src/lib.rs:2:6"), "{stdout}");

    write_lib(&root, CLEAN);
    let out = run(&["--workspace", "--root", root_s]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean tree must pass strict mode"
    );
}

#[test]
fn baseline_tolerates_legacy_fails_new_and_ratchets_down() {
    let root = fixture("ratchet");
    let root_s = root.to_str().unwrap();
    let baseline = root.join("ANALYZE.json");
    let baseline_s = baseline.to_str().unwrap();

    // Commit a baseline with one legacy finding.
    write_lib(&root, ONE_UNWRAP);
    let out = run(&[
        "--root",
        root_s,
        "--baseline",
        baseline_s,
        "--write-baseline",
    ]);
    assert_eq!(out.status.code(), Some(0));

    // Unchanged tree: the legacy finding is tolerated.
    let out = run(&["--root", root_s, "--baseline", baseline_s]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "legacy findings must pass the gate"
    );

    // A new finding in the same bucket is a regression.
    write_lib(&root, TWO_UNWRAPS);
    let out = run(&["--root", root_s, "--baseline", baseline_s]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "bucket growth must fail the gate"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("baseline gate FAILED"), "{stderr}");

    // Fixing everything passes and suggests locking the ratchet in.
    write_lib(&root, CLEAN);
    let out = run(&["--root", root_s, "--baseline", baseline_s]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("counts went down"), "{stdout}");
}

#[test]
fn baseline_report_is_byte_deterministic() {
    let root = fixture("determinism");
    let root_s = root.to_str().unwrap();
    write_lib(&root, ONE_UNWRAP);

    let a = root.join("a.json");
    let b = root.join("b.json");
    for path in [&a, &b] {
        let out = run(&[
            "--root",
            root_s,
            "--baseline",
            path.to_str().unwrap(),
            "--write-baseline",
        ]);
        assert_eq!(out.status.code(), Some(0));
    }
    let (a, b) = (fs::read(&a).unwrap(), fs::read(&b).unwrap());
    assert!(!a.is_empty());
    assert_eq!(a, b, "report bytes must be identical across runs");

    // The committed-baseline shape: every rule appears with a total, and
    // non-zero rules carry a per-area breakdown.
    let text = String::from_utf8(a).unwrap();
    assert!(text.contains("\"panic-in-lib\""));
    assert!(text.contains("\"crates/rest\""));
    assert!(text.ends_with('\n'));
}

#[test]
fn explain_prints_the_catalog_entry_and_rejects_unknown_rules() {
    let out = run(&["--explain", "blocking-while-lock-held"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("blocking-while-lock-held (error)"),
        "{stdout}"
    );
    assert!(
        stdout.lines().count() > 2,
        "long-form body expected: {stdout}"
    );

    let out = run(&["--explain", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule `no-such-rule`"), "{stderr}");
}

#[test]
fn dump_callgraph_is_byte_deterministic_and_resolves_the_fixture_edge() {
    let root = fixture("callgraph");
    let root_s = root.to_str().unwrap();
    write_lib(
        &root,
        "pub fn helper(x: u8) -> u8 {\n    x\n}\npub fn entry(x: u8) -> u8 {\n    helper(x)\n}\n",
    );

    let a = run(&["--dump-callgraph", "--root", root_s]);
    assert_eq!(a.status.code(), Some(0));
    let b = run(&["--dump-callgraph", "--root", root_s]);
    assert_eq!(
        a.stdout, b.stdout,
        "call-graph dump must be byte-identical across runs"
    );

    let text = String::from_utf8(a.stdout).unwrap();
    assert!(text.contains("\"rest::entry\""), "{text}");
    assert!(text.contains("\"rest::helper\""), "{text}");
    assert!(text.ends_with('\n'));
}

/// Wall-clock decomposition of the engine on the real workspace: parse
/// (scrub + tokenize, once per file) vs the full analysis. Ignored by
/// default — run with `cargo test --release -p datalens-analyze --test
/// cli -- --ignored --nocapture` when re-measuring.
#[test]
#[ignore = "perf snapshot, run manually in release mode"]
fn perf_snapshot() {
    use datalens_analyze::{analyze_sources, discover_files, find_workspace_root, lexer};
    use std::time::Instant;

    let cwd = std::env::current_dir().unwrap();
    let root = find_workspace_root(&cwd).expect("workspace root");
    let paths = discover_files(&root).unwrap();
    let sources: Vec<(String, String)> = paths
        .iter()
        .map(|p| (p.clone(), fs::read_to_string(root.join(p)).unwrap()))
        .collect();

    let t = Instant::now();
    let files: Vec<_> = sources
        .iter()
        .map(|(p, s)| lexer::SourceFile::parse(p, s))
        .collect();
    let parse_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let _ = analyze_sources(&sources);
    let full_ms = t.elapsed().as_secs_f64() * 1e3;

    println!(
        "perf: {} files, parse(scrub+tokenize) {parse_ms:.1}ms, full analysis {full_ms:.1}ms, \
         rules+graph {:.1}ms",
        files.len(),
        full_ms - parse_ms
    );
}

//! Property test for suppression scoping: a `// lint:allow(...)` comment
//! clears exactly the item it is written against — never a sibling item
//! in the same file and never any site in another file — and a
//! multi-line justification (extra comment-only lines between the
//! marker and the statement) does not break the link.

use datalens_analyze::analyze_sources;
use datalens_analyze::diag::PANIC_IN_LIB;
use proptest::prelude::*;

/// One generated workspace: `per_file[i]` sibling functions in file `i`,
/// each containing exactly one `.unwrap()` panic site.
#[derive(Debug, Clone)]
struct Workspace {
    per_file: Vec<usize>,
    /// The (file, fn) that carries the allowance.
    allowed: (usize, usize),
    /// Comment-only justification lines between marker and statement.
    extra_comment_lines: usize,
    /// Whether the allowance is trailing (same line) or comment-above.
    trailing: bool,
}

fn render(ws: &Workspace) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for (fi, &n_fns) in ws.per_file.iter().enumerate() {
        let mut src = String::new();
        for fj in 0..n_fns {
            src.push_str(&format!("pub fn f{fi}_{fj}(x: Option<u8>) -> u8 {{\n"));
            if (fi, fj) == ws.allowed {
                if ws.trailing {
                    src.push_str(
                        "    x.unwrap() // lint:allow(panic-in-lib): caller checked is_some\n",
                    );
                } else {
                    src.push_str("    // lint:allow(panic-in-lib): caller checked is_some\n");
                    for k in 0..ws.extra_comment_lines {
                        src.push_str(&format!("    // …justification line {k}\n"));
                    }
                    src.push_str("    x.unwrap()\n");
                }
            } else {
                src.push_str("    x.unwrap()\n");
            }
            src.push_str("}\n");
        }
        // Serving area, so panic-in-lib applies to every site.
        files.push((format!("crates/rest/src/gen{fi}.rs"), src));
    }
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly one site goes quiet — the one under the allowance — and
    /// every sibling and cross-file site is still reported.
    #[test]
    fn allowance_clears_only_its_own_site(
        per_file in proptest::collection::vec(1usize..4, 2..4),
        pick in proptest::collection::vec(0usize..1000, 2),
        extra_comment_lines in 0usize..3,
        trailing in any::<bool>(),
    ) {
        let file = pick[0] % per_file.len();
        let func = pick[1] % per_file[file];
        let ws = Workspace {
            per_file: per_file.clone(),
            allowed: (file, func),
            extra_comment_lines,
            trailing,
        };
        let files = render(&ws);
        let analysis = analyze_sources(&files);
        let panics: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == PANIC_IN_LIB)
            .collect();

        let total_sites: usize = per_file.iter().sum();
        prop_assert_eq!(
            panics.len(),
            total_sites - 1,
            "exactly the allowed site is quiet: {:#?}\nsources: {:#?}",
            panics,
            files
        );
        // The quiet site really is the allowed one: its file contributes
        // one fewer finding than its sibling count.
        let in_allowed_file = panics
            .iter()
            .filter(|d| d.path == files[file].0)
            .count();
        prop_assert_eq!(in_allowed_file, per_file[file] - 1);
        // No other file lost a finding.
        for (fi, &n) in per_file.iter().enumerate() {
            if fi != file {
                let cnt = panics.iter().filter(|d| d.path == files[fi].0).count();
                prop_assert_eq!(cnt, n, "file {} must keep all {} findings", fi, n);
            }
        }
    }

    /// An allowance with NO reason never clears anything (and is itself
    /// flagged by suppression-requires-reason).
    #[test]
    fn reasonless_allowance_clears_nothing(n_fns in 1usize..4) {
        let mut src = String::new();
        for fj in 0..n_fns {
            src.push_str(&format!("pub fn f{fj}(x: Option<u8>) -> u8 {{\n"));
            src.push_str("    // lint:allow(panic-in-lib)\n");
            src.push_str("    x.unwrap()\n}\n");
        }
        let files = vec![("crates/rest/src/gen.rs".to_string(), src)];
        let analysis = analyze_sources(&files);
        let panics = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == PANIC_IN_LIB)
            .count();
        prop_assert_eq!(panics, n_fns);
    }
}

//! # datalens-repair
//!
//! Automated error repair (§3 "Automated Data Repair"): the two repair
//! strategies the dashboard offers — [`MlImputer`] (decision trees for
//! numeric columns, k-NN for categorical ones) and [`StandardImputer`]
//! (mean / "Dummy") — plus a HoloClean-style probabilistic repairer
//! ([`HoloCleanRepairer`]) driven by FD-context voting.
//!
//! Every repairer first nulls out the detected error cells (so lies never
//! leak into training data), then fills all holes, returning a
//! [`RepairResult`] with the full change log.

pub mod holoclean;
pub mod ml_imputer;
pub mod repairer;
pub mod standard;

pub use holoclean::{HoloCleanRepairConfig, HoloCleanRepairer};
pub use ml_imputer::MlImputer;
pub use repairer::{AppliedRepair, RepairContext, RepairResult, Repairer};
pub use standard::StandardImputer;

/// Build a repairer by its machine name (DataSheet / search-space names).
pub fn repairer_by_name(name: &str) -> Option<Box<dyn Repairer>> {
    match name {
        "standard_imputer" => Some(Box::new(StandardImputer::default())),
        "ml_imputer" => Some(Box::new(MlImputer::default())),
        "holoclean_repairer" => Some(Box::new(HoloCleanRepairer::default())),
        _ => None,
    }
}

/// All registered repairer names, in a stable order.
pub const REPAIRER_NAMES: [&str; 3] = ["standard_imputer", "ml_imputer", "holoclean_repairer"];

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use datalens_table::{CellRef, Column, Table};

    use crate::repairer::RepairContext;
    use crate::{repairer_by_name, REPAIRER_NAMES};

    fn table_from(nums: &[Option<f64>], cats: &[Option<String>]) -> Table {
        let n = nums.len().min(cats.len());
        Table::new(
            "p",
            vec![
                Column::from_f64("n", nums[..n].to_vec()),
                Column::from_str_vals("c", cats[..n].to_vec()),
            ],
        )
        .unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Repair invariants, for every registered repairer:
        /// (1) shape preserved; (2) cells that were non-null and not
        /// flagged are untouched; (3) flagged + null cells never keep
        /// their dirty value when an alternative exists.
        #[test]
        fn repairers_touch_only_what_they_should(
            nums in proptest::collection::vec(proptest::option::of(-100f64..100.0), 4..30),
            cats in proptest::collection::vec(
                proptest::option::of(proptest::sample::select(vec!["a", "b", "c"])), 4..30),
            flags in proptest::collection::vec((0usize..30, 0usize..2), 0..6),
        ) {
            let cats: Vec<Option<String>> = cats.into_iter()
                .map(|o| o.map(str::to_string)).collect();
            let t = table_from(&nums, &cats);
            let errors: Vec<CellRef> = flags.iter()
                .map(|&(r, c)| CellRef::new(r % t.n_rows(), c))
                .collect();
            let ctx = RepairContext::default();
            for name in REPAIRER_NAMES {
                let rep = repairer_by_name(name).unwrap();
                let result = rep.repair(&t, &errors, &ctx);
                prop_assert_eq!(result.table.shape(), t.shape(), "{} shape", name);
                for cell in t.cell_refs() {
                    let original = t.get(cell).unwrap();
                    if !original.is_null() && !errors.contains(&cell) {
                        prop_assert_eq!(
                            result.table.get(cell).unwrap(),
                            original,
                            "{} touched clean cell {}", name, cell
                        );
                    }
                }
                // Every applied repair targets a null or flagged cell.
                for r in &result.repairs {
                    let was_null = t.get(r.cell).unwrap().is_null();
                    prop_assert!(
                        was_null || errors.contains(&r.cell),
                        "{} repaired untargeted cell {}", name, r.cell
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;
    use datalens_table::CellRef;

    #[test]
    fn names_resolve_and_round_trip() {
        for name in REPAIRER_NAMES {
            let r = repairer_by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(r.name(), name);
        }
        assert!(repairer_by_name("bogus").is_none());
    }

    #[test]
    fn imputers_fix_injected_errors_better_than_leaving_them() {
        let dd = datalens_datasets::registry::dirty("nasa", 5).unwrap();
        let errors: Vec<CellRef> = dd.error_cells();
        let ctx = RepairContext::default();
        for name in ["standard_imputer", "ml_imputer"] {
            let res = repairer_by_name(name)
                .unwrap()
                .repair(&dd.dirty, &errors, &ctx);
            assert_eq!(res.table.null_count(), 0, "{name} left holes");
            assert_eq!(res.table.shape(), dd.dirty.shape());
        }
    }

    #[test]
    fn ml_imputer_beats_standard_on_numeric_restoration() {
        // Measure mean absolute restoration error over corrupted numeric
        // cells: the ML imputer exploits feature correlations, the mean
        // imputer cannot.
        let dd = datalens_datasets::registry::dirty("nasa", 11).unwrap();
        let errors = dd.error_cells();
        let ctx = RepairContext::default();
        let mae_of = |table: &datalens_table::Table| {
            let mut total = 0.0;
            let mut n = 0usize;
            for &cell in &errors {
                let truth = dd.clean.get(cell).unwrap();
                let fixed = table.get(cell).unwrap();
                if let (Some(a), Some(b)) = (truth.as_f64(), fixed.as_f64()) {
                    total += (a - b).abs();
                    n += 1;
                }
            }
            total / n.max(1) as f64
        };
        let standard = repairer_by_name("standard_imputer")
            .unwrap()
            .repair(&dd.dirty, &errors, &ctx);
        let ml = repairer_by_name("ml_imputer")
            .unwrap()
            .repair(&dd.dirty, &errors, &ctx);
        let mae_std = mae_of(&standard.table);
        let mae_ml = mae_of(&ml.table);
        assert!(
            mae_ml < mae_std,
            "ml {mae_ml:.2} should beat standard {mae_std:.2}"
        );
    }
}

//! The repair abstraction: tools that take a table plus the detected
//! error cells and produce a repaired table.

use serde::{Deserialize, Serialize};

use datalens_fd::RuleSet;
use datalens_table::{CellRef, Table, Value};

/// Shared context for repairers (rule set feeds HoloClean's FD voting).
#[derive(Debug, Clone, Default)]
pub struct RepairContext {
    pub rules: RuleSet,
    pub seed: u64,
}

/// One applied repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedRepair {
    pub cell: CellRef,
    pub old: Value,
    pub new: Value,
}

/// Result of a repair run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairResult {
    /// Tool name (e.g. "standard_imputer").
    pub tool: String,
    /// The repaired table.
    pub table: Table,
    /// Every change applied, in cell order.
    pub repairs: Vec<AppliedRepair>,
}

impl RepairResult {
    /// Number of cells actually changed.
    pub fn n_repaired(&self) -> usize {
        self.repairs.len()
    }

    /// Count of repairs per column index.
    pub fn counts_per_column(&self, n_cols: usize) -> Vec<usize> {
        let mut out = vec![0usize; n_cols];
        for r in &self.repairs {
            if r.cell.col < n_cols {
                out[r.cell.col] += 1;
            }
        }
        out
    }
}

/// An error-repair tool.
pub trait Repairer: Send + Sync {
    /// Stable machine name for DataSheets / MLflow.
    fn name(&self) -> &'static str;
    /// Repair the given error cells of `table`.
    fn repair(&self, table: &Table, errors: &[CellRef], ctx: &RepairContext) -> RepairResult;
}

/// Null out the error cells — the shared first step of every imputer
/// (detected-but-plausible values must not leak into training data).
pub fn null_out(table: &Table, errors: &[CellRef]) -> Table {
    let mut t = table.clone();
    for &cell in errors {
        if cell.row < t.n_rows() && cell.col < t.n_cols() {
            t.set(cell, Value::Null).expect("validated range");
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    #[test]
    fn null_out_clears_only_error_cells() {
        let t = Table::new(
            "t",
            vec![Column::from_i64("x", [Some(1), Some(2), Some(3)])],
        )
        .unwrap();
        let n = null_out(&t, &[CellRef::new(1, 0)]);
        assert!(n.get(CellRef::new(1, 0)).unwrap().is_null());
        assert_eq!(n.get(CellRef::new(0, 0)).unwrap(), Value::Int(1));
        // Out-of-range refs are ignored rather than panicking.
        let n2 = null_out(&t, &[CellRef::new(99, 99)]);
        assert_eq!(n2, t);
    }

    #[test]
    fn result_counters() {
        let t = Table::new("t", vec![Column::from_i64("x", [Some(1)])]).unwrap();
        let res = RepairResult {
            tool: "x".into(),
            table: t,
            repairs: vec![AppliedRepair {
                cell: CellRef::new(0, 0),
                old: Value::Null,
                new: Value::Int(5),
            }],
        };
        assert_eq!(res.n_repaired(), 1);
        assert_eq!(res.counts_per_column(2), vec![1, 0]);
    }
}

//! HoloClean-style probabilistic repair (Rekatsinas et al., 2017),
//! simplified to weighted-feature voting.
//!
//! For each erroneous cell, candidate values are gathered from (a) values
//! co-occurring with the row's FD-determinant context in other rows and
//! (b) the column's frequent values. Candidates are scored by a weighted
//! pseudo-likelihood — FD-context support dominates, global frequency
//! breaks ties — and the argmax wins. Numeric cells without FD context
//! fall back to the column median (a robust point estimate).

use std::collections::HashMap;

use datalens_table::{CellRef, DataType, Table, Value};

use crate::repairer::{null_out, AppliedRepair, RepairContext, RepairResult, Repairer};

/// Scoring weights for HoloClean repair.
#[derive(Debug, Clone)]
pub struct HoloCleanRepairConfig {
    /// Weight of one supporting row in the same FD context.
    pub w_fd_support: f64,
    /// Weight of one supporting row column-wide.
    pub w_frequency: f64,
}

impl Default for HoloCleanRepairConfig {
    fn default() -> Self {
        HoloCleanRepairConfig {
            w_fd_support: 10.0,
            w_frequency: 1.0,
        }
    }
}

/// The HoloClean repairer.
#[derive(Debug, Clone, Default)]
pub struct HoloCleanRepairer {
    pub config: HoloCleanRepairConfig,
}

impl Repairer for HoloCleanRepairer {
    fn name(&self) -> &'static str {
        "holoclean_repairer"
    }

    fn repair(&self, table: &Table, errors: &[CellRef], ctx: &RepairContext) -> RepairResult {
        let nulled = null_out(table, errors);
        let mut repaired = nulled.clone();
        let mut repairs = Vec::new();

        // FD rules whose rhs is each column (for context voting).
        let mut rules_by_rhs: HashMap<usize, Vec<Vec<usize>>> = HashMap::new();
        for rule in ctx.rules.active() {
            let Some(rhs) = nulled.column_index(&rule.fd.rhs) else {
                continue;
            };
            let lhs: Option<Vec<usize>> =
                rule.fd.lhs.iter().map(|n| nulled.column_index(n)).collect();
            if let Some(lhs) = lhs {
                rules_by_rhs.entry(rhs).or_default().push(lhs);
            }
        }

        for (c, col) in nulled.columns().iter().enumerate() {
            let holes: Vec<usize> = (0..nulled.n_rows()).filter(|&r| col.is_null(r)).collect();
            if holes.is_empty() {
                continue;
            }
            // Global frequency table for the column.
            let freq: Vec<(Value, usize)> = col.value_counts();

            for &r in &holes {
                let mut scores: HashMap<String, (Value, f64)> = HashMap::new();
                // (a) FD-context candidates.
                if let Some(rule_lhss) = rules_by_rhs.get(&c) {
                    for lhs in rule_lhss {
                        // Context backoff: when a determinant cell of this
                        // row was itself flagged (nulled), fall back to its
                        // *observed* dirty value. Detection often attributes
                        // an FD violation to the wrong side of the pair;
                        // real HoloClean resolves this by joint inference —
                        // this is the one-step approximation.
                        let key: Option<Vec<String>> = lhs
                            .iter()
                            .map(|&lc| {
                                let v = nulled.column(lc).expect("in range").get(r);
                                let v = if v.is_null() {
                                    table.column(lc).expect("in range").get(r)
                                } else {
                                    v
                                };
                                if v.is_null() {
                                    None
                                } else {
                                    Some(v.render())
                                }
                            })
                            .collect();
                        let Some(key) = key else { continue };
                        for other in 0..nulled.n_rows() {
                            if other == r {
                                continue;
                            }
                            let other_key: Option<Vec<String>> = lhs
                                .iter()
                                .map(|&lc| {
                                    let v = nulled.column(lc).expect("in range").get(other);
                                    if v.is_null() {
                                        None
                                    } else {
                                        Some(v.render())
                                    }
                                })
                                .collect();
                            if other_key.as_ref() != Some(&key) {
                                continue;
                            }
                            let candidate = nulled.column(c).expect("in range").get(other);
                            if candidate.is_null() {
                                continue;
                            }
                            let entry = scores
                                .entry(candidate.render())
                                .or_insert((candidate.clone(), 0.0));
                            entry.1 += self.config.w_fd_support;
                        }
                    }
                }
                // (b) Global-frequency candidates (categorical only —
                // frequency voting on continuous data is meaningless).
                if col.dtype() == DataType::Str {
                    for (v, count) in freq.iter().take(20) {
                        let entry = scores.entry(v.render()).or_insert((v.clone(), 0.0));
                        entry.1 += self.config.w_frequency * *count as f64;
                    }
                }

                let chosen = scores
                    .into_values()
                    .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.total_cmp(&a.0)))
                    .map(|(v, _)| v)
                    .or_else(|| median_value(col));

                if let Some(new) = chosen {
                    let cell = CellRef::new(r, c);
                    let old = table.get(cell).expect("in range");
                    repaired.set(cell, new.clone()).expect("in range");
                    repairs.push(AppliedRepair { cell, old, new });
                }
            }
        }

        repairs.sort_by_key(|r| r.cell);
        RepairResult {
            tool: self.name().to_string(),
            table: repaired,
            repairs,
        }
    }
}

/// Column median as a typed value (numeric columns only).
fn median_value(col: &datalens_table::Column) -> Option<Value> {
    let mut vals = col.numeric_values();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(f64::total_cmp);
    let m = vals[vals.len() / 2];
    Some(match col.dtype() {
        DataType::Int => Value::Int(m.round() as i64),
        DataType::Bool => Value::Bool(m >= 0.5),
        _ => Value::Float(m),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_fd::{Fd, FdRule, RuleSet};
    use datalens_table::Column;

    fn fd_rules() -> RuleSet {
        let mut rs = RuleSet::new();
        rs.add(FdRule::user_defined(
            Fd::new(vec!["zip".into()], "city".into()).unwrap(),
        ));
        rs
    }

    #[test]
    fn fd_context_repairs_to_cohort_value() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("zip", [Some(1), Some(1), Some(1), Some(2), Some(2)]),
                Column::from_str_vals(
                    "city",
                    [
                        Some("ulm"),
                        Some("WRONG"),
                        Some("ulm"),
                        Some("bonn"),
                        Some("bonn"),
                    ],
                ),
            ],
        )
        .unwrap();
        let ctx = RepairContext {
            rules: fd_rules(),
            seed: 0,
        };
        let res = HoloCleanRepairer::default().repair(&t, &[CellRef::new(1, 1)], &ctx);
        assert_eq!(
            res.table.get_at(1, "city").unwrap(),
            Value::Str("ulm".into())
        );
    }

    #[test]
    fn frequency_vote_without_rules() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals(
                "s",
                [Some("a"), Some("a"), Some("a"), Some("b"), None],
            )],
        )
        .unwrap();
        let res = HoloCleanRepairer::default().repair(&t, &[], &RepairContext::default());
        assert_eq!(res.table.get_at(4, "s").unwrap(), Value::Str("a".into()));
    }

    #[test]
    fn numeric_fallback_is_median() {
        let t = Table::new(
            "t",
            vec![Column::from_f64(
                "n",
                [Some(1.0), Some(2.0), Some(3.0), Some(1000.0), None],
            )],
        )
        .unwrap();
        let res = HoloCleanRepairer::default().repair(&t, &[], &RepairContext::default());
        // Median (3.0 at index 2 of sorted [1,2,3,1000]) — robust to the
        // 1000 outlier, unlike the mean (251.5).
        let v = res.table.get_at(4, "n").unwrap().as_f64().unwrap();
        assert!(v <= 3.0, "median fallback gave {v}");
    }

    #[test]
    fn fd_support_outweighs_global_frequency() {
        // Globally "metropolis" dominates, but zip 9's cohort says "village".
        let mut zips = vec![Some(1); 10];
        let mut cities: Vec<Option<&str>> = vec![Some("metropolis"); 10];
        zips.extend([Some(9), Some(9), Some(9)]);
        cities.extend([Some("village"), Some("village"), None]);
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("zip", zips),
                Column::from_str_vals("city", cities),
            ],
        )
        .unwrap();
        let ctx = RepairContext {
            rules: fd_rules(),
            seed: 0,
        };
        let res = HoloCleanRepairer::default().repair(&t, &[], &ctx);
        assert_eq!(
            res.table.get_at(12, "city").unwrap(),
            Value::Str("village".into())
        );
    }

    #[test]
    fn unrepairable_all_null_string_column_left_null() {
        let t = Table::new("t", vec![Column::from_str_vals::<&str>("s", [None, None])]).unwrap();
        let res = HoloCleanRepairer::default().repair(&t, &[], &RepairContext::default());
        // No candidates, no median for strings: stays null (honest output).
        assert_eq!(res.table.null_count(), 2);
        assert_eq!(res.n_repaired(), 0);
    }
}

//! Standard imputation (§3 "Automated Data Repair"): "the arithmetic mean
//! for numerical columns and a predefined 'Dummy' value for categorical
//! columns."

use datalens_table::{CellRef, DataType, Table, Value};

use crate::repairer::{null_out, AppliedRepair, RepairContext, RepairResult, Repairer};

/// The standard imputer.
#[derive(Debug, Clone)]
pub struct StandardImputer {
    /// Replacement for categorical (string) cells.
    pub dummy: String,
}

impl Default for StandardImputer {
    fn default() -> Self {
        StandardImputer {
            dummy: "Dummy".to_string(),
        }
    }
}

impl Repairer for StandardImputer {
    fn name(&self) -> &'static str {
        "standard_imputer"
    }

    fn repair(&self, table: &Table, errors: &[CellRef], _ctx: &RepairContext) -> RepairResult {
        let nulled = null_out(table, errors);
        let mut repaired = nulled.clone();
        let mut repairs = Vec::new();

        for (c, col) in nulled.columns().iter().enumerate() {
            // Repair every null in the column (original nulls are missing
            // values too — the paper's imputers fill them all).
            let fill = match col.dtype() {
                DataType::Str => Value::Str(self.dummy.clone()),
                DataType::Bool => {
                    // Majority value, defaulting to false.
                    let vals = col.numeric_values();
                    let ones = vals.iter().filter(|&&v| v == 1.0).count();
                    Value::Bool(ones * 2 > vals.len())
                }
                DataType::Int | DataType::Float => {
                    let vals = col.numeric_values();
                    if vals.is_empty() {
                        Value::Int(0)
                    } else {
                        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                        match col.dtype() {
                            DataType::Int => Value::Int(mean.round() as i64),
                            _ => Value::Float(mean),
                        }
                    }
                }
            };
            for r in 0..nulled.n_rows() {
                if col.is_null(r) {
                    let cell = CellRef::new(r, c);
                    let old = table.get(cell).expect("in range");
                    repaired.set(cell, fill.clone()).expect("in range");
                    repairs.push(AppliedRepair {
                        cell,
                        old,
                        new: fill.clone(),
                    });
                }
            }
        }

        RepairResult {
            tool: self.name().to_string(),
            table: repaired,
            repairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_f64("num", [Some(10.0), Some(20.0), Some(600.0), None]),
                Column::from_str_vals("cat", [Some("a"), None, Some("b"), Some("c")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fills_detected_errors_and_preexisting_nulls() {
        let t = table();
        // Cell (2,0) detected as an outlier.
        let res =
            StandardImputer::default().repair(&t, &[CellRef::new(2, 0)], &RepairContext::default());
        // Mean of the remaining numerics (10, 20) = 15.
        assert_eq!(res.table.get_at(2, "num").unwrap(), Value::Float(15.0));
        assert_eq!(res.table.get_at(3, "num").unwrap(), Value::Float(15.0));
        assert_eq!(
            res.table.get_at(1, "cat").unwrap(),
            Value::Str("Dummy".into())
        );
        assert_eq!(res.n_repaired(), 3);
        assert_eq!(res.table.null_count(), 0);
    }

    #[test]
    fn int_columns_round_to_int() {
        let t = Table::new("t", vec![Column::from_i64("n", [Some(1), Some(2), None])]).unwrap();
        let res = StandardImputer::default().repair(&t, &[], &RepairContext::default());
        assert_eq!(res.table.get_at(2, "n").unwrap(), Value::Int(2)); // 1.5 → 2
    }

    #[test]
    fn applied_repairs_record_old_values() {
        let t = table();
        let res =
            StandardImputer::default().repair(&t, &[CellRef::new(0, 1)], &RepairContext::default());
        let rep = res
            .repairs
            .iter()
            .find(|r| r.cell == CellRef::new(0, 1))
            .unwrap();
        assert_eq!(rep.old, Value::Str("a".into()));
        assert_eq!(rep.new, Value::Str("Dummy".into()));
    }

    #[test]
    fn clean_table_with_no_errors_unchanged() {
        let t = Table::new("t", vec![Column::from_i64("n", [Some(1), Some(2)])]).unwrap();
        let res = StandardImputer::default().repair(&t, &[], &RepairContext::default());
        assert_eq!(res.table, t);
        assert_eq!(res.n_repaired(), 0);
    }

    #[test]
    fn all_null_numeric_column_falls_back_to_zero() {
        let t = Table::new("t", vec![Column::from_i64("n", [None, None])]).unwrap();
        let res = StandardImputer::default().repair(&t, &[], &RepairContext::default());
        assert_eq!(res.table.get_at(0, "n").unwrap(), Value::Int(0));
    }
}

//! ML imputation (§3): "the system employs Decision Tree algorithms for
//! numerical columns and k-nearest Neighbors (k-NN) for categorical
//! columns."
//!
//! For each column containing holes (detected errors are nulled first),
//! a model is trained on the rows where that column is present, using the
//! *other* columns (ordinal-encoded, nulls mean-filled) as features, and
//! the holes are predicted. Columns whose training set is empty fall back
//! to standard imputation.

use datalens_ml::encode::{
    classification_target, regression_target, CategoricalEncoding, TableEncoder,
};
use datalens_ml::knn::KnnClassifier;
use datalens_ml::tree::{DecisionTreeRegressor, TreeConfig};
use datalens_table::{CellRef, DataType, Table, Value};

use crate::repairer::{null_out, AppliedRepair, RepairContext, RepairResult, Repairer};
use crate::standard::StandardImputer;

/// The ML imputer.
#[derive(Debug, Clone)]
pub struct MlImputer {
    /// k for the categorical k-NN models.
    pub knn_k: usize,
    /// Decision-tree hyperparameters for numeric models.
    pub tree: TreeConfig,
}

impl Default for MlImputer {
    fn default() -> Self {
        MlImputer {
            knn_k: 5,
            tree: TreeConfig {
                max_depth: 10,
                ..TreeConfig::default()
            },
        }
    }
}

impl Repairer for MlImputer {
    fn name(&self) -> &'static str {
        "ml_imputer"
    }

    fn repair(&self, table: &Table, errors: &[CellRef], _ctx: &RepairContext) -> RepairResult {
        let nulled = null_out(table, errors);
        let mut repaired = nulled.clone();
        let mut repairs = Vec::new();

        for (c, col) in nulled.columns().iter().enumerate() {
            let holes: Vec<usize> = (0..nulled.n_rows()).filter(|&r| col.is_null(r)).collect();
            if holes.is_empty() {
                continue;
            }
            let col_name = col.name().to_string();
            // Features: every other column.
            let encoder = TableEncoder::fit(&nulled, &[&col_name], CategoricalEncoding::Ordinal);
            let predictions: Option<Vec<Value>> = match col.dtype() {
                DataType::Int | DataType::Float => {
                    let (train_rows, targets) = regression_target(col);
                    if train_rows.is_empty() {
                        None
                    } else {
                        let train_x: Vec<Vec<f64>> = train_rows
                            .iter()
                            .map(|&r| encoder.encode_row(&nulled, r))
                            .collect();
                        let mut model = DecisionTreeRegressor::new(self.tree.clone());
                        model.fit(&train_x, &targets);
                        let hole_x: Vec<Vec<f64>> = holes
                            .iter()
                            .map(|&r| encoder.encode_row(&nulled, r))
                            .collect();
                        let preds = model.predict(&hole_x);
                        Some(
                            preds
                                .into_iter()
                                .map(|p| match col.dtype() {
                                    DataType::Int => Value::Int(p.round() as i64),
                                    _ => Value::Float(p),
                                })
                                .collect(),
                        )
                    }
                }
                DataType::Str | DataType::Bool => {
                    let (train_rows, labels) = classification_target(col);
                    if train_rows.is_empty() {
                        None
                    } else {
                        let train_x: Vec<Vec<f64>> = train_rows
                            .iter()
                            .map(|&r| encoder.encode_row(&nulled, r))
                            .collect();
                        let mut model = KnnClassifier::new(self.knn_k);
                        model.fit(&train_x, &labels);
                        let hole_x: Vec<Vec<f64>> = holes
                            .iter()
                            .map(|&r| encoder.encode_row(&nulled, r))
                            .collect();
                        let preds = model.predict(&hole_x);
                        Some(
                            preds
                                .into_iter()
                                .map(|p| match col.dtype() {
                                    DataType::Bool => Value::parse_typed(&p, DataType::Bool)
                                        .unwrap_or(Value::Bool(false)),
                                    _ => Value::Str(p),
                                })
                                .collect(),
                        )
                    }
                }
            };
            let Some(predictions) = predictions else {
                continue; // column is entirely null; standard pass handles it
            };
            for (&r, p) in holes.iter().zip(predictions) {
                let cell = CellRef::new(r, c);
                let old = table.get(cell).expect("in range");
                repaired.set(cell, p.clone()).expect("in range");
                repairs.push(AppliedRepair { cell, old, new: p });
            }
        }

        // Safety net: any column that was entirely null gets the standard
        // treatment so the output is hole-free.
        if repaired.null_count() > 0 {
            let fallback =
                StandardImputer::default().repair(&repaired, &[], &RepairContext::default());
            for rep in fallback.repairs {
                let old = table.get(rep.cell).expect("in range");
                repairs.push(AppliedRepair {
                    cell: rep.cell,
                    old,
                    new: rep.new.clone(),
                });
            }
            repaired = fallback.table;
        }

        repairs.sort_by_key(|r| r.cell);
        RepairResult {
            tool: self.name().to_string(),
            table: repaired,
            repairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    /// y = 3x; hole at x=5 should impute near 15.
    #[test]
    fn numeric_imputation_uses_feature_relation() {
        let x: Vec<Option<f64>> = (0..40).map(|i| Some(i as f64)).collect();
        let mut y: Vec<Option<f64>> = (0..40).map(|i| Some(3.0 * i as f64)).collect();
        y[5] = None;
        let t = Table::new(
            "t",
            vec![Column::from_f64("x", x), Column::from_f64("y", y)],
        )
        .unwrap();
        let res = MlImputer::default().repair(&t, &[], &RepairContext::default());
        let imputed = res.table.get_at(5, "y").unwrap().as_f64().unwrap();
        assert!((imputed - 15.0).abs() < 3.5, "imputed {imputed}");
        assert_eq!(res.table.null_count(), 0);
    }

    #[test]
    fn categorical_imputation_uses_neighbours() {
        // Category mirrors the sign of x.
        let x: Vec<Option<f64>> = (-20..20).map(|i| Some(i as f64)).collect();
        let mut cat: Vec<Option<String>> = (-20..20)
            .map(|i| Some(if i < 0 { "neg" } else { "pos" }.to_string()))
            .collect();
        cat[5] = None; // x = -15 → "neg"
        cat[35] = None; // x = 15 → "pos"
        let t = Table::new(
            "t",
            vec![Column::from_f64("x", x), Column::from_str_vals("cat", cat)],
        )
        .unwrap();
        let res = MlImputer::default().repair(&t, &[], &RepairContext::default());
        assert_eq!(
            res.table.get_at(5, "cat").unwrap(),
            Value::Str("neg".into())
        );
        assert_eq!(
            res.table.get_at(35, "cat").unwrap(),
            Value::Str("pos".into())
        );
    }

    #[test]
    fn detected_errors_are_replaced_not_trusted() {
        // Cell (3,1) holds a lie; detection flags it; the imputer must
        // replace it with something near the true relation.
        let x: Vec<Option<f64>> = (0..30).map(|i| Some(i as f64)).collect();
        let mut y: Vec<Option<f64>> = (0..30).map(|i| Some(2.0 * i as f64)).collect();
        y[3] = Some(9999.0);
        let t = Table::new(
            "t",
            vec![Column::from_f64("x", x), Column::from_f64("y", y)],
        )
        .unwrap();
        let res = MlImputer::default().repair(&t, &[CellRef::new(3, 1)], &RepairContext::default());
        let fixed = res.table.get_at(3, "y").unwrap().as_f64().unwrap();
        assert!((fixed - 6.0).abs() < 4.0, "fixed {fixed}");
    }

    #[test]
    fn int_columns_round() {
        let x: Vec<Option<f64>> = (0..20).map(|i| Some(i as f64)).collect();
        let mut y: Vec<Option<i64>> = (0..20).map(|i| Some(i * 2)).collect();
        y[10] = None;
        let t = Table::new(
            "t",
            vec![Column::from_f64("x", x), Column::from_i64("y", y)],
        )
        .unwrap();
        let res = MlImputer::default().repair(&t, &[], &RepairContext::default());
        assert!(matches!(res.table.get_at(10, "y").unwrap(), Value::Int(_)));
    }

    #[test]
    fn output_is_always_hole_free() {
        let t = Table::new(
            "t",
            vec![
                Column::from_f64("dead", [None, None, None]),
                Column::from_str_vals("s", [Some("a"), None, Some("b")]),
            ],
        )
        .unwrap();
        let res = MlImputer::default().repair(&t, &[], &RepairContext::default());
        assert_eq!(res.table.null_count(), 0);
    }

    #[test]
    fn no_holes_no_changes() {
        let t = Table::new("t", vec![Column::from_i64("n", [Some(1), Some(2)])]).unwrap();
        let res = MlImputer::default().repair(&t, &[], &RepairContext::default());
        assert_eq!(res.table, t);
        assert_eq!(res.n_repaired(), 0);
    }
}

//! Table schemas: ordered, named, typed fields.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TableError;
use crate::value::DataType;

/// A single named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of [`Field`]s with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Schema, TableError> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(TableError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Convenience constructor from `(name, dtype)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Result<Schema, TableError>
    where
        I: IntoIterator<Item = (S, DataType)>,
        S: Into<String>,
    {
        Schema::new(pairs.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field at position `idx`.
    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Field with the given name.
    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Indices of all numeric (int/float) columns.
    pub fn numeric_indices(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.dtype.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// Append a field, rejecting duplicates.
    pub fn push(&mut self, field: Field) -> Result<(), TableError> {
        if self.index_of(&field.name).is_some() {
            return Err(TableError::DuplicateColumn(field.name));
        }
        self.fields.push(field);
        Ok(())
    }

    /// Project onto the named columns, preserving the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, TableError> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            let f = self
                .field_by_name(name)
                .ok_or_else(|| TableError::UnknownColumn((*name).to_string()))?;
            fields.push(f.clone());
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|fl| format!("{}: {}", fl.name, fl.dtype))
            .collect();
        write!(f, "[{}]", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_pairs([
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("c", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::from_pairs([("a", DataType::Int), ("a", DataType::Str)]);
        assert!(matches!(err, Err(TableError::DuplicateColumn(n)) if n == "a"));
    }

    #[test]
    fn index_and_lookup() {
        let s = abc();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zz"), None);
        assert_eq!(s.field_by_name("c").unwrap().dtype, DataType::Float);
        assert_eq!(s.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn numeric_indices_selects_int_and_float() {
        assert_eq!(abc().numeric_indices(), vec![0, 2]);
    }

    #[test]
    fn project_reorders_and_errors_on_unknown() {
        let s = abc();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert!(matches!(
            s.project(&["nope"]),
            Err(TableError::UnknownColumn(_))
        ));
    }

    #[test]
    fn push_guards_duplicates() {
        let mut s = abc();
        assert!(s.push(Field::new("d", DataType::Bool)).is_ok());
        assert!(s.push(Field::new("a", DataType::Bool)).is_err());
        assert_eq!(s.len(), 4);
    }
}

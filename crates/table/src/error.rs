//! Error type shared by all table operations.

use std::fmt;
use std::io;

/// Errors produced by table construction, access, and CSV I/O.
#[derive(Debug)]
pub enum TableError {
    /// Two columns share a name.
    DuplicateColumn(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A referenced row is out of bounds.
    RowOutOfBounds { row: usize, rows: usize },
    /// Columns passed to a table constructor have differing lengths.
    LengthMismatch { expected: usize, got: usize },
    /// A value's type does not match its column's type.
    TypeMismatch {
        column: String,
        expected: String,
        got: String,
    },
    /// Malformed CSV input.
    Csv { line: usize, message: String },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DuplicateColumn(name) => write!(f, "duplicate column name {name:?}"),
            TableError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            TableError::RowOutOfBounds { row, rows } => {
                write!(f, "row {row} out of bounds for table with {rows} rows")
            }
            TableError::LengthMismatch { expected, got } => {
                write!(f, "column length mismatch: expected {expected}, got {got}")
            }
            TableError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column {column:?}: expected {expected}, got {got}"
            ),
            TableError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            TableError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TableError {
    fn from(e: io::Error) -> Self {
        TableError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::Csv {
            line: 3,
            message: "unclosed quote".into(),
        };
        assert_eq!(e.to_string(), "CSV error at line 3: unclosed quote");
        let e = TableError::RowOutOfBounds { row: 9, rows: 5 };
        assert!(e.to_string().contains("row 9"));
    }

    #[test]
    fn io_errors_convert() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: TableError = io_err.into();
        assert!(matches!(e, TableError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Typed columnar storage over immutable row-group chunks.
//!
//! A [`Column`] stores one attribute's values as an ordered list of
//! [`Chunk`]s — dense typed buffers with a validity bitmap, dictionary
//! encoded for strings (see [`crate::chunk`]). Each chunk sits behind its
//! own [`Arc`], so cloning a column (and therefore a whole
//! [`crate::Table`]) is O(1) and mutation goes through [`Arc::make_mut`]
//! at *chunk* granularity: a single-row repair copies one row group, not
//! the column.
//!
//! Equality is **logical**: two columns with the same name, dtype and
//! per-row values are equal regardless of how rows are split into chunks
//! or how dictionaries are laid out.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::chunk::{Chunk, ChunkBuilder, ChunkValues, RawRef, DEFAULT_CHUNK_ROWS};
use crate::value::{DataType, Value};

/// A named, typed column of values, stored as row-group chunks. Cheap to
/// clone: every chunk is shared until one of the clones mutates it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    name: String,
    dtype: DataType,
    len: usize,
    chunks: Vec<Arc<Chunk>>,
    /// Cumulative end-row of each chunk (`offsets[i]` = first row of
    /// chunk `i+1`), kept for O(log chunks) row lookup.
    offsets: Vec<usize>,
}

impl Column {
    /// An empty column of the given dtype.
    pub fn empty(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            len: 0,
            chunks: Vec::new(),
            offsets: Vec::new(),
        }
    }

    /// An all-null column of the given dtype and length.
    pub fn nulls(name: impl Into<String>, dtype: DataType, len: usize) -> Column {
        let mut chunks = Vec::new();
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(DEFAULT_CHUNK_ROWS);
            chunks.push(Arc::new(Chunk::nulls(dtype, take)));
            remaining -= take;
        }
        Column::from_chunks(name, dtype, chunks)
    }

    /// Assemble a column from pre-built chunks (all of dtype `dtype`).
    pub(crate) fn from_chunks(
        name: impl Into<String>,
        dtype: DataType,
        chunks: Vec<Arc<Chunk>>,
    ) -> Column {
        let mut offsets = Vec::with_capacity(chunks.len());
        let mut len = 0;
        for c in &chunks {
            debug_assert_eq!(c.dtype(), dtype, "chunk dtype mismatch");
            len += c.len();
            offsets.push(len);
        }
        Column {
            name: name.into(),
            dtype,
            len,
            chunks,
            offsets,
        }
    }

    /// Whether two columns share every chunk allocation (i.e. no deep
    /// copy has happened between them).
    pub fn shares_data_with(&self, other: &Column) -> bool {
        self.chunks.len() == other.chunks.len()
            && self
                .chunks
                .iter()
                .zip(&other.chunks)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Construct by coercing dynamically-typed values to `dtype`; values
    /// that do not fit become null (pandas `errors="coerce"` semantics).
    pub fn from_values(
        name: impl Into<String>,
        dtype: DataType,
        values: impl IntoIterator<Item = Value>,
    ) -> Column {
        let mut b = ChunkBuilder::new(dtype, DEFAULT_CHUNK_ROWS);
        for v in values {
            b.push(v);
        }
        Column::from_chunks(name, dtype, b.finish())
    }

    /// Typed convenience constructors used heavily in tests and examples.
    pub fn from_i64(
        name: impl Into<String>,
        vals: impl IntoIterator<Item = Option<i64>>,
    ) -> Column {
        Column::from_values(
            name,
            DataType::Int,
            vals.into_iter().map(|v| v.map_or(Value::Null, Value::Int)),
        )
    }
    pub fn from_f64(
        name: impl Into<String>,
        vals: impl IntoIterator<Item = Option<f64>>,
    ) -> Column {
        Column::from_values(
            name,
            DataType::Float,
            vals.into_iter()
                .map(|v| v.map_or(Value::Null, Value::Float)),
        )
    }
    pub fn from_bool(
        name: impl Into<String>,
        vals: impl IntoIterator<Item = Option<bool>>,
    ) -> Column {
        Column::from_values(
            name,
            DataType::Bool,
            vals.into_iter().map(|v| v.map_or(Value::Null, Value::Bool)),
        )
    }
    pub fn from_str_vals<S: Into<String>>(
        name: impl Into<String>,
        vals: impl IntoIterator<Item = Option<S>>,
    ) -> Column {
        Column::from_values(
            name,
            DataType::Str,
            vals.into_iter()
                .map(|v| v.map_or(Value::Null, |s| Value::Str(s.into()))),
        )
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// The column's row-group chunks, in row order.
    pub fn chunks(&self) -> &[Arc<Chunk>] {
        &self.chunks
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Locate `row`: (chunk index, offset within chunk). Rows past the
    /// end land on `chunks.len()`, so the subsequent chunk index panics
    /// like slice indexing.
    fn locate(&self, row: usize) -> (usize, usize) {
        let idx = self.offsets.partition_point(|&end| end <= row);
        let start = if idx == 0 { 0 } else { self.offsets[idx - 1] };
        (idx, row - start)
    }

    /// Dynamically-typed view of row `row`; out-of-range reads panic like
    /// slice indexing (callers validate through `Table`).
    pub fn get(&self, row: usize) -> Value {
        let (chunk, off) = self.locate(row);
        self.chunks[chunk].value(off)
    }

    /// Set row `row` to `value`, coercing to the column type; lossy
    /// coercions become null. Copies only the touched chunk when shared.
    pub fn set(&mut self, row: usize, value: Value) {
        let coerced = value.coerce(self.dtype);
        let (chunk, off) = self.locate(row);
        Arc::make_mut(&mut self.chunks[chunk]).set_value(off, coerced);
    }

    /// Append a value (coerced to the column type). Fills the last chunk
    /// up to [`DEFAULT_CHUNK_ROWS`] before opening a new one.
    pub fn push(&mut self, value: Value) {
        let coerced = value.coerce(self.dtype);
        match self.chunks.last_mut() {
            Some(last) if last.len() < DEFAULT_CHUNK_ROWS => {
                Arc::make_mut(last).push_value(coerced);
                if let Some(end) = self.offsets.last_mut() {
                    *end += 1;
                }
            }
            _ => {
                let mut chunk = Chunk::empty(self.dtype);
                chunk.push_value(coerced);
                self.chunks.push(Arc::new(chunk));
                self.offsets.push(self.len + 1);
            }
        }
        self.len += 1;
    }

    /// Iterator over all values as dynamically-typed [`Value`]s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.chunks
            .iter()
            .flat_map(|c| (0..c.len()).map(move |i| c.value(i)))
    }

    /// Borrowed raw view of every row, in order — chunk-layout agnostic.
    fn raw_iter(&self) -> impl Iterator<Item = RawRef<'_>> {
        self.chunks
            .iter()
            .flat_map(|c| (0..c.len()).map(move |i| c.raw_at(i)))
    }

    /// Whether row `row` holds a null.
    pub fn is_null(&self, row: usize) -> bool {
        let (chunk, off) = self.locate(row);
        !self.chunks[chunk].is_valid(off)
    }

    /// Number of null entries.
    pub fn null_count(&self) -> usize {
        self.chunks.iter().map(|c| c.null_count()).sum()
    }

    /// Numeric view: `(row, value)` for every non-null numeric entry.
    /// Booleans map to 0/1; string columns yield nothing.
    pub fn numeric_entries(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut base = 0;
        for c in &self.chunks {
            match c.values() {
                ChunkValues::Int(v) => {
                    for (i, x) in v.iter().enumerate() {
                        if c.is_valid(i) {
                            out.push((base + i, *x as f64));
                        }
                    }
                }
                ChunkValues::Float(v) => {
                    for (i, x) in v.iter().enumerate() {
                        if c.is_valid(i) {
                            out.push((base + i, *x));
                        }
                    }
                }
                ChunkValues::Bool(v) => {
                    for (i, x) in v.iter().enumerate() {
                        if c.is_valid(i) {
                            out.push((base + i, if *x { 1.0 } else { 0.0 }));
                        }
                    }
                }
                ChunkValues::Str { .. } => {}
            }
            base += c.len();
        }
        out
    }

    /// Non-null numeric values, in row order.
    pub fn numeric_values(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for c in &self.chunks {
            c.numeric_values_into(&mut out);
        }
        out
    }

    /// Rendered string forms of every value (nulls as empty strings).
    pub fn rendered(&self) -> Vec<String> {
        self.iter().map(|v| v.render()).collect()
    }

    /// A copy containing only the rows at `indices`, in that order.
    pub fn take(&self, indices: &[usize]) -> Column {
        let mut b = ChunkBuilder::new(self.dtype, DEFAULT_CHUNK_ROWS);
        for &i in indices {
            b.push(self.get(i));
        }
        Column::from_chunks(self.name.clone(), self.dtype, b.finish())
    }

    /// A copy with rows re-split into chunks of `target_rows` (minimum 1).
    /// Used by tests and benchmarks to exercise multi-chunk layouts.
    pub fn rechunk(&self, target_rows: usize) -> Column {
        let mut b = ChunkBuilder::new(self.dtype, target_rows);
        for v in self.iter() {
            b.push(v);
        }
        Column::from_chunks(self.name.clone(), self.dtype, b.finish())
    }

    /// Cast the column to another type; lossy entries become null.
    pub fn cast(&self, dtype: DataType) -> Column {
        if dtype == self.dtype() {
            return self.clone();
        }
        Column::from_values(self.name.clone(), dtype, self.iter())
    }

    /// Heap bytes resident across this column's chunk buffers. Shared
    /// chunks are counted in every sharer (this is a size gauge, not an
    /// allocator report).
    pub fn resident_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.resident_bytes()).sum()
    }

    /// Distinct non-null values with their occurrence counts, ordered by
    /// descending count then value order (deterministic).
    pub fn value_counts(&self) -> Vec<(Value, usize)> {
        use std::collections::HashMap;
        let mut out: Vec<(Value, usize)> = if self.dtype == DataType::Str {
            // Chunk-batched fast path: tally dictionary codes per chunk
            // (O(rows) integer increments), merge tallies by string.
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for chunk in &self.chunks {
                if let ChunkValues::Str { dict, codes } = chunk.values() {
                    let mut per = vec![0usize; dict.len()];
                    for (i, &code) in codes.iter().enumerate() {
                        if chunk.is_valid(i) {
                            per[code as usize] += 1;
                        }
                    }
                    for (s, n) in dict.iter().zip(per) {
                        if n > 0 {
                            *counts.entry(s.as_str()).or_insert(0) += n;
                        }
                    }
                }
            }
            counts
                .into_iter()
                .map(|(s, n)| (Value::Str(s.to_string()), n))
                .collect()
        } else {
            let mut counts: HashMap<Value, usize> = HashMap::new();
            for v in self.iter() {
                if !v.is_null() {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            counts.into_iter().collect()
        };
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
        out
    }
}

impl PartialEq for Column {
    /// Logical equality: same name, dtype and per-row values. Chunk
    /// boundaries and dictionary layout do not participate — a rechunked
    /// or re-encoded column still compares equal. Floats compare
    /// IEEE-wise (NaN ≠ NaN), matching the previous derived semantics.
    fn eq(&self, other: &Column) -> bool {
        self.name == other.name
            && self.dtype == other.dtype
            && self.len == other.len
            && self.raw_iter().eq(other.raw_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_constructors_and_get() {
        let c = Column::from_i64("a", [Some(1), None, Some(3)]);
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.get(1).is_null());
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn from_values_coerces_misfits_to_null() {
        let c = Column::from_values(
            "a",
            DataType::Int,
            vec![Value::Int(1), Value::Str("xyz".into()), Value::Float(2.0)],
        );
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.get(1).is_null());
        assert_eq!(c.get(2), Value::Int(2));
    }

    #[test]
    fn set_coerces_and_nulls_lossy() {
        let mut c = Column::from_f64("f", [Some(1.0), Some(2.0)]);
        c.set(0, Value::Int(9));
        assert_eq!(c.get(0), Value::Float(9.0));
        c.set(1, Value::Str("not a number".into()));
        assert!(c.get(1).is_null());
    }

    #[test]
    fn numeric_entries_skip_nulls_and_strings() {
        let c = Column::from_i64("a", [Some(1), None, Some(3)]);
        assert_eq!(c.numeric_entries(), vec![(0, 1.0), (2, 3.0)]);
        let s = Column::from_str_vals("s", [Some("x"), Some("y")]);
        assert!(s.numeric_entries().is_empty());
        let b = Column::from_bool("b", [Some(true), Some(false), None]);
        assert_eq!(b.numeric_values(), vec![1.0, 0.0]);
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::from_str_vals("s", [Some("a"), Some("b"), None]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.len(), 3);
        assert!(t.get(0).is_null());
        assert_eq!(t.get(1), Value::Str("a".into()));
        assert_eq!(t.get(2), Value::Str("a".into()));
    }

    #[test]
    fn cast_between_types() {
        let c = Column::from_str_vals("s", [Some("1"), Some("2.5"), Some("x")]);
        let f = c.cast(DataType::Float);
        assert_eq!(f.get(0), Value::Float(1.0));
        assert_eq!(f.get(1), Value::Float(2.5));
        assert!(f.get(2).is_null());
    }

    #[test]
    fn value_counts_ordered_by_count() {
        let c = Column::from_str_vals("s", [Some("a"), Some("b"), Some("a"), None]);
        let vc = c.value_counts();
        assert_eq!(vc[0], (Value::Str("a".into()), 2));
        assert_eq!(vc[1], (Value::Str("b".into()), 1));
        assert_eq!(vc.len(), 2);
    }

    #[test]
    fn nulls_constructor() {
        let c = Column::nulls("n", DataType::Bool, 4);
        assert_eq!(c.null_count(), 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn clone_shares_payload_until_mutation() {
        let a = Column::from_i64("a", (0..1000).map(Some));
        let b = a.clone();
        // O(1) clone: same chunk allocations.
        assert!(a.shares_data_with(&b));

        // Copy-on-write: mutating the clone detaches it ...
        let mut c = a.clone();
        c.set(3, Value::Int(-1));
        assert!(!a.shares_data_with(&c));
        // ... and leaves the original untouched.
        assert_eq!(a.get(3), Value::Int(3));
        assert_eq!(c.get(3), Value::Int(-1));

        // Mutating an unshared column does not reallocate.
        let before = c.get(0);
        c.set(0, Value::Int(42));
        assert_ne!(c.get(0), before);
    }

    #[test]
    fn single_row_edit_copies_only_the_touched_chunk() {
        let a = Column::from_i64("a", (0..100).map(Some)).rechunk(10);
        assert_eq!(a.chunks().len(), 10);
        let mut b = a.clone();
        b.set(35, Value::Int(-1));
        let shared: Vec<bool> = a
            .chunks()
            .iter()
            .zip(b.chunks())
            .map(|(x, y)| Arc::ptr_eq(x, y))
            .collect();
        // Chunk 3 (rows 30..40) was copied; all nine others still share.
        assert_eq!(shared.iter().filter(|&&s| !s).count(), 1);
        assert!(!shared[3]);
        assert_eq!(a.get(35), Value::Int(35));
        assert_eq!(b.get(35), Value::Int(-1));
    }

    #[test]
    fn rechunk_preserves_logical_equality() {
        let vals: Vec<Option<f64>> = (0..50)
            .map(|i| {
                if i % 7 == 0 {
                    None
                } else {
                    Some(i as f64 * 1.5)
                }
            })
            .collect();
        let a = Column::from_f64("f", vals);
        for target in [1, 3, 16, 1000] {
            let b = a.rechunk(target);
            assert_eq!(a, b, "rechunk({target}) changed logical content");
            assert_eq!(a.null_count(), b.null_count());
            assert_eq!(a.numeric_entries(), b.numeric_entries());
        }
    }

    #[test]
    fn push_fills_last_chunk_and_tracks_offsets() {
        let mut c = Column::empty("a", DataType::Int);
        for i in 0..10 {
            c.push(Value::Int(i));
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.chunks().len(), 1);
        assert_eq!(c.get(9), Value::Int(9));
        assert_eq!(c.iter().count(), 10);
    }

    #[test]
    fn equality_ignores_dictionary_layout() {
        // Same logical strings, different first-occurrence orders.
        let a = Column::from_str_vals("s", [Some("x"), Some("y"), Some("x")]);
        let mut b = Column::from_str_vals("s", [Some("y"), Some("y"), Some("x")]);
        b.set(0, Value::Str("x".into()));
        assert_eq!(a, b);
    }

    #[test]
    fn nan_is_not_equal_to_itself_in_columns() {
        let a = Column::from_f64("f", [Some(f64::NAN)]);
        let b = Column::from_f64("f", [Some(f64::NAN)]);
        assert_ne!(a, b);
    }
}

//! Typed columnar storage.
//!
//! A [`Column`] stores one attribute's values in a type-specialised vector
//! (`Vec<Option<T>>`), which keeps numeric scans allocation-free while still
//! exposing a dynamically-typed [`Value`] view for the dashboard layers.
//!
//! The payload sits behind an [`Arc`], so cloning a column (and therefore a
//! whole [`crate::Table`]) is O(1); mutation goes through
//! [`Arc::make_mut`], copying a column's data only when it is actually
//! shared (copy-on-write).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::value::{DataType, Value};

/// The typed payload of a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    Int(Vec<Option<i64>>),
    Float(Vec<Option<f64>>),
    Bool(Vec<Option<bool>>),
    Str(Vec<Option<String>>),
}

impl ColumnData {
    /// An empty payload of the given type.
    pub fn empty(dtype: DataType) -> ColumnData {
        match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
        }
    }

    /// An all-null payload of the given type and length.
    pub fn nulls(dtype: DataType, len: usize) -> ColumnData {
        match dtype {
            DataType::Int => ColumnData::Int(vec![None; len]),
            DataType::Float => ColumnData::Float(vec![None; len]),
            DataType::Bool => ColumnData::Bool(vec![None; len]),
            DataType::Str => ColumnData::Str(vec![None; len]),
        }
    }

    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A named, typed column of values. Cheap to clone: the payload is
/// shared until one of the clones mutates it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    name: String,
    data: Arc<ColumnData>,
}

impl Column {
    /// Construct from a pre-typed payload.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Column {
        Column {
            name: name.into(),
            data: Arc::new(data),
        }
    }

    /// Whether two columns share the same payload allocation (i.e. no
    /// deep copy has happened between them).
    pub fn shares_data_with(&self, other: &Column) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Construct by coercing dynamically-typed values to `dtype`; values
    /// that do not fit become null (pandas `errors="coerce"` semantics).
    pub fn from_values(
        name: impl Into<String>,
        dtype: DataType,
        values: impl IntoIterator<Item = Value>,
    ) -> Column {
        let mut col = Column::new(name, ColumnData::empty(dtype));
        for v in values {
            col.push(v.coerce(dtype));
        }
        col
    }

    /// Typed convenience constructors used heavily in tests and examples.
    pub fn from_i64(
        name: impl Into<String>,
        vals: impl IntoIterator<Item = Option<i64>>,
    ) -> Column {
        Column::new(name, ColumnData::Int(vals.into_iter().collect()))
    }
    pub fn from_f64(
        name: impl Into<String>,
        vals: impl IntoIterator<Item = Option<f64>>,
    ) -> Column {
        Column::new(name, ColumnData::Float(vals.into_iter().collect()))
    }
    pub fn from_bool(
        name: impl Into<String>,
        vals: impl IntoIterator<Item = Option<bool>>,
    ) -> Column {
        Column::new(name, ColumnData::Bool(vals.into_iter().collect()))
    }
    pub fn from_str_vals<S: Into<String>>(
        name: impl Into<String>,
        vals: impl IntoIterator<Item = Option<S>>,
    ) -> Column {
        Column::new(
            name,
            ColumnData::Str(vals.into_iter().map(|v| v.map(Into::into)).collect()),
        )
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dynamically-typed view of row `row`; out-of-range reads panic like
    /// slice indexing (callers validate through `Table`).
    pub fn get(&self, row: usize) -> Value {
        match &*self.data {
            ColumnData::Int(v) => v[row].map_or(Value::Null, Value::Int),
            ColumnData::Float(v) => v[row].map_or(Value::Null, Value::Float),
            ColumnData::Bool(v) => v[row].map_or(Value::Null, Value::Bool),
            ColumnData::Str(v) => v[row]
                .as_ref()
                .map_or(Value::Null, |s| Value::Str(s.clone())),
        }
    }

    /// Set row `row` to `value`, coercing to the column type; lossy
    /// coercions become null.
    pub fn set(&mut self, row: usize, value: Value) {
        let coerced = value.coerce(self.dtype());
        match (Arc::make_mut(&mut self.data), coerced) {
            (ColumnData::Int(v), Value::Int(x)) => v[row] = Some(x),
            (ColumnData::Float(v), Value::Float(x)) => v[row] = Some(x),
            (ColumnData::Bool(v), Value::Bool(x)) => v[row] = Some(x),
            (ColumnData::Str(v), Value::Str(x)) => v[row] = Some(x),
            (ColumnData::Int(v), _) => v[row] = None,
            (ColumnData::Float(v), _) => v[row] = None,
            (ColumnData::Bool(v), _) => v[row] = None,
            (ColumnData::Str(v), _) => v[row] = None,
        }
    }

    /// Append a value (coerced to the column type).
    pub fn push(&mut self, value: Value) {
        let coerced = value.coerce(self.dtype());
        match (Arc::make_mut(&mut self.data), coerced) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(Some(x)),
            (ColumnData::Float(v), Value::Float(x)) => v.push(Some(x)),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (ColumnData::Str(v), Value::Str(x)) => v.push(Some(x)),
            (ColumnData::Int(v), _) => v.push(None),
            (ColumnData::Float(v), _) => v.push(None),
            (ColumnData::Bool(v), _) => v.push(None),
            (ColumnData::Str(v), _) => v.push(None),
        }
    }

    /// Iterator over all values as dynamically-typed [`Value`]s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Whether row `row` holds a null.
    pub fn is_null(&self, row: usize) -> bool {
        match &*self.data {
            ColumnData::Int(v) => v[row].is_none(),
            ColumnData::Float(v) => v[row].is_none(),
            ColumnData::Bool(v) => v[row].is_none(),
            ColumnData::Str(v) => v[row].is_none(),
        }
    }

    /// Number of null entries.
    pub fn null_count(&self) -> usize {
        match &*self.data {
            ColumnData::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Str(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Numeric view: `(row, value)` for every non-null numeric entry.
    /// Booleans map to 0/1; string columns yield nothing.
    pub fn numeric_entries(&self) -> Vec<(usize, f64)> {
        match &*self.data {
            ColumnData::Int(v) => v
                .iter()
                .enumerate()
                .filter_map(|(i, x)| x.map(|x| (i, x as f64)))
                .collect(),
            ColumnData::Float(v) => v
                .iter()
                .enumerate()
                .filter_map(|(i, x)| x.map(|x| (i, x)))
                .collect(),
            ColumnData::Bool(v) => v
                .iter()
                .enumerate()
                .filter_map(|(i, x)| x.map(|x| (i, if x { 1.0 } else { 0.0 })))
                .collect(),
            ColumnData::Str(_) => Vec::new(),
        }
    }

    /// Non-null numeric values, in row order.
    pub fn numeric_values(&self) -> Vec<f64> {
        self.numeric_entries().into_iter().map(|(_, v)| v).collect()
    }

    /// Rendered string forms of every value (nulls as empty strings).
    pub fn rendered(&self) -> Vec<String> {
        self.iter().map(|v| v.render()).collect()
    }

    /// A copy containing only the rows at `indices`, in that order.
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(v: &[Option<T>], idx: &[usize]) -> Vec<Option<T>> {
            idx.iter().map(|&i| v[i].clone()).collect()
        }
        let data = match &*self.data {
            ColumnData::Int(v) => ColumnData::Int(gather(v, indices)),
            ColumnData::Float(v) => ColumnData::Float(gather(v, indices)),
            ColumnData::Bool(v) => ColumnData::Bool(gather(v, indices)),
            ColumnData::Str(v) => ColumnData::Str(gather(v, indices)),
        };
        Column::new(self.name.clone(), data)
    }

    /// Cast the column to another type; lossy entries become null.
    pub fn cast(&self, dtype: DataType) -> Column {
        if dtype == self.dtype() {
            return self.clone();
        }
        Column::from_values(self.name.clone(), dtype, self.iter())
    }

    /// Distinct non-null values with their occurrence counts, ordered by
    /// descending count then value order (deterministic).
    pub fn value_counts(&self) -> Vec<(Value, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<Value, usize> = HashMap::new();
        for v in self.iter() {
            if !v.is_null() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(Value, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_constructors_and_get() {
        let c = Column::from_i64("a", [Some(1), None, Some(3)]);
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.get(1).is_null());
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn from_values_coerces_misfits_to_null() {
        let c = Column::from_values(
            "a",
            DataType::Int,
            vec![Value::Int(1), Value::Str("xyz".into()), Value::Float(2.0)],
        );
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.get(1).is_null());
        assert_eq!(c.get(2), Value::Int(2));
    }

    #[test]
    fn set_coerces_and_nulls_lossy() {
        let mut c = Column::from_f64("f", [Some(1.0), Some(2.0)]);
        c.set(0, Value::Int(9));
        assert_eq!(c.get(0), Value::Float(9.0));
        c.set(1, Value::Str("not a number".into()));
        assert!(c.get(1).is_null());
    }

    #[test]
    fn numeric_entries_skip_nulls_and_strings() {
        let c = Column::from_i64("a", [Some(1), None, Some(3)]);
        assert_eq!(c.numeric_entries(), vec![(0, 1.0), (2, 3.0)]);
        let s = Column::from_str_vals("s", [Some("x"), Some("y")]);
        assert!(s.numeric_entries().is_empty());
        let b = Column::from_bool("b", [Some(true), Some(false), None]);
        assert_eq!(b.numeric_values(), vec![1.0, 0.0]);
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::from_str_vals("s", [Some("a"), Some("b"), None]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.len(), 3);
        assert!(t.get(0).is_null());
        assert_eq!(t.get(1), Value::Str("a".into()));
        assert_eq!(t.get(2), Value::Str("a".into()));
    }

    #[test]
    fn cast_between_types() {
        let c = Column::from_str_vals("s", [Some("1"), Some("2.5"), Some("x")]);
        let f = c.cast(DataType::Float);
        assert_eq!(f.get(0), Value::Float(1.0));
        assert_eq!(f.get(1), Value::Float(2.5));
        assert!(f.get(2).is_null());
    }

    #[test]
    fn value_counts_ordered_by_count() {
        let c = Column::from_str_vals("s", [Some("a"), Some("b"), Some("a"), None]);
        let vc = c.value_counts();
        assert_eq!(vc[0], (Value::Str("a".into()), 2));
        assert_eq!(vc[1], (Value::Str("b".into()), 1));
        assert_eq!(vc.len(), 2);
    }

    #[test]
    fn nulls_constructor() {
        let d = ColumnData::nulls(DataType::Bool, 4);
        let c = Column::new("n", d);
        assert_eq!(c.null_count(), 4);
    }

    #[test]
    fn clone_shares_payload_until_mutation() {
        let a = Column::from_i64("a", (0..1000).map(Some));
        let b = a.clone();
        // O(1) clone: same allocation.
        assert!(a.shares_data_with(&b));

        // Copy-on-write: mutating the clone detaches it ...
        let mut c = a.clone();
        c.set(3, Value::Int(-1));
        assert!(!a.shares_data_with(&c));
        // ... and leaves the original untouched.
        assert_eq!(a.get(3), Value::Int(3));
        assert_eq!(c.get(3), Value::Int(-1));

        // Mutating an unshared column does not reallocate.
        let before = c.get(0);
        c.set(0, Value::Int(42));
        assert_ne!(c.get(0), before);
    }
}

//! Immutable row-group chunks — the storage unit behind [`crate::Column`].
//!
//! A [`Chunk`] holds up to [`DEFAULT_CHUNK_ROWS`] values of one dtype in a
//! dense typed buffer plus a validity bitmap (bit set = value present).
//! String chunks are dictionary-encoded: a chunk-local `dict` of distinct
//! strings in **first-occurrence order** and a `codes` buffer of `u32`
//! indices into it, so repeated categories cost four bytes per row and the
//! encoding is byte-stable across runs and thread counts.
//!
//! Chunks are shared behind `Arc`s and never mutated in place by sharers:
//! a column edit goes through `Arc::make_mut`, copying only the touched
//! chunk (copy-on-write at chunk granularity). Null slots store a
//! canonical placeholder (`0`, `0.0`, `false`, code `0`) so two chunks
//! with equal logical content serialize identically.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::value::{DataType, Value};

/// Default number of rows per chunk (row group). Chosen so seed-scale
/// datasets stay single-chunk (keeping their statistics bit-identical to
/// a whole-column computation) while large ingests stay bounded by
/// O(row-group) working memory.
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

/// The dense typed buffer of one chunk. Null rows hold a canonical
/// placeholder and are masked out by the chunk's validity bitmap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChunkValues {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    /// Dictionary entries appear in first-occurrence order; overwritten
    /// entries may linger unreferenced (logical readers go through the
    /// codes, never the dict directly).
    Str {
        dict: Vec<String>,
        codes: Vec<u32>,
    },
}

/// A borrowed, raw view of one slot — the unit of *physical* equality
/// (`Float` compares IEEE-wise: NaN ≠ NaN, matching the pre-chunk
/// `Vec<Option<f64>>` column equality).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RawRef<'a> {
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(&'a str),
}

/// One immutable row group: a validity bitmap over a dense typed buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    len: usize,
    null_count: usize,
    /// Bitmap, one bit per row, bit set = valid (non-null). Trailing
    /// bits beyond `len` are always zero (canonical serialization).
    validity: Vec<u64>,
    values: ChunkValues,
}

fn bit_get(bits: &[u64], i: usize) -> bool {
    (bits[i / 64] >> (i % 64)) & 1 == 1
}

fn bit_set(bits: &mut [u64], i: usize, v: bool) {
    let (word, mask) = (i / 64, 1u64 << (i % 64));
    if v {
        bits[word] |= mask;
    } else {
        bits[word] &= !mask;
    }
}

impl Chunk {
    /// An empty chunk of the given dtype.
    pub fn empty(dtype: DataType) -> Chunk {
        Chunk {
            len: 0,
            null_count: 0,
            validity: Vec::new(),
            values: match dtype {
                DataType::Int => ChunkValues::Int(Vec::new()),
                DataType::Float => ChunkValues::Float(Vec::new()),
                DataType::Bool => ChunkValues::Bool(Vec::new()),
                DataType::Str => ChunkValues::Str {
                    dict: Vec::new(),
                    codes: Vec::new(),
                },
            },
        }
    }

    /// An all-null chunk of the given dtype and length.
    pub fn nulls(dtype: DataType, len: usize) -> Chunk {
        Chunk {
            len,
            null_count: len,
            validity: vec![0; len.div_ceil(64)],
            values: match dtype {
                DataType::Int => ChunkValues::Int(vec![0; len]),
                DataType::Float => ChunkValues::Float(vec![0.0; len]),
                DataType::Bool => ChunkValues::Bool(vec![false; len]),
                DataType::Str => ChunkValues::Str {
                    dict: Vec::new(),
                    codes: vec![0; len],
                },
            },
        }
    }

    pub fn dtype(&self) -> DataType {
        match &self.values {
            ChunkValues::Int(_) => DataType::Int,
            ChunkValues::Float(_) => DataType::Float,
            ChunkValues::Bool(_) => DataType::Bool,
            ChunkValues::Str { .. } => DataType::Str,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Whether row `row` holds a value (bit set in the validity bitmap).
    pub fn is_valid(&self, row: usize) -> bool {
        bit_get(&self.validity, row)
    }

    /// The raw typed buffer (dense; consult [`Chunk::is_valid`]).
    pub fn values(&self) -> &ChunkValues {
        &self.values
    }

    /// Dynamically-typed view of row `row` (out-of-range panics, like
    /// slice indexing).
    pub fn value(&self, row: usize) -> Value {
        match self.raw_at(row) {
            RawRef::Null => Value::Null,
            RawRef::Int(v) => Value::Int(v),
            RawRef::Float(v) => Value::Float(v),
            RawRef::Bool(v) => Value::Bool(v),
            RawRef::Str(s) => Value::Str(s.to_string()),
        }
    }

    /// Borrowed raw view of row `row`.
    pub fn raw_at(&self, row: usize) -> RawRef<'_> {
        if !self.is_valid(row) {
            // Touch the buffer so out-of-range rows panic even when the
            // validity word exists (len not a multiple of 64).
            assert!(row < self.len, "row {row} out of range for chunk");
            return RawRef::Null;
        }
        match &self.values {
            ChunkValues::Int(v) => RawRef::Int(v[row]),
            ChunkValues::Float(v) => RawRef::Float(v[row]),
            ChunkValues::Bool(v) => RawRef::Bool(v[row]),
            ChunkValues::Str { dict, codes } => RawRef::Str(&dict[codes[row] as usize]),
        }
    }

    /// Append every non-null value as `f64` (booleans as 0/1) to `out`,
    /// in row order. Non-finite floats are included — downstream
    /// statistics filter (and count) them. String chunks yield nothing.
    pub fn numeric_values_into(&self, out: &mut Vec<f64>) {
        match &self.values {
            ChunkValues::Int(v) => {
                for (i, x) in v.iter().enumerate() {
                    if self.is_valid(i) {
                        out.push(*x as f64);
                    }
                }
            }
            ChunkValues::Float(v) => {
                for (i, x) in v.iter().enumerate() {
                    if self.is_valid(i) {
                        out.push(*x);
                    }
                }
            }
            ChunkValues::Bool(v) => {
                for (i, x) in v.iter().enumerate() {
                    if self.is_valid(i) {
                        out.push(if *x { 1.0 } else { 0.0 });
                    }
                }
            }
            ChunkValues::Str { .. } => {}
        }
    }

    /// Heap bytes resident for this chunk's buffers (validity + values +
    /// dictionary contents).
    pub fn resident_bytes(&self) -> usize {
        let values = match &self.values {
            ChunkValues::Int(v) => v.len() * 8,
            ChunkValues::Float(v) => v.len() * 8,
            ChunkValues::Bool(v) => v.len(),
            ChunkValues::Str { dict, codes } => {
                codes.len() * 4
                    + dict
                        .iter()
                        .map(|s| s.len() + std::mem::size_of::<String>())
                        .sum::<usize>()
            }
        };
        self.validity.len() * 8 + values
    }

    /// Overwrite row `row` with `value` (already coerced to this chunk's
    /// dtype; anything else becomes null). Null slots are reset to the
    /// canonical placeholder so serialization stays deterministic.
    pub(crate) fn set_value(&mut self, row: usize, value: Value) {
        let was_valid = self.is_valid(row);
        let valid = match (&mut self.values, value) {
            (ChunkValues::Int(v), Value::Int(x)) => {
                v[row] = x;
                true
            }
            (ChunkValues::Float(v), Value::Float(x)) => {
                v[row] = x;
                true
            }
            (ChunkValues::Bool(v), Value::Bool(x)) => {
                v[row] = x;
                true
            }
            (ChunkValues::Str { dict, codes }, Value::Str(x)) => {
                codes[row] = intern(dict, x);
                true
            }
            (ChunkValues::Int(v), _) => {
                v[row] = 0;
                false
            }
            (ChunkValues::Float(v), _) => {
                v[row] = 0.0;
                false
            }
            (ChunkValues::Bool(v), _) => {
                v[row] = false;
                false
            }
            (ChunkValues::Str { codes, .. }, _) => {
                codes[row] = 0;
                false
            }
        };
        bit_set(&mut self.validity, row, valid);
        match (was_valid, valid) {
            (true, false) => self.null_count += 1,
            (false, true) => self.null_count -= 1,
            _ => {}
        }
    }

    /// Append `value` (already coerced; anything else becomes null).
    pub(crate) fn push_value(&mut self, value: Value) {
        let row = self.len;
        if row / 64 >= self.validity.len() {
            self.validity.push(0);
        }
        let valid = match (&mut self.values, value) {
            (ChunkValues::Int(v), Value::Int(x)) => {
                v.push(x);
                true
            }
            (ChunkValues::Float(v), Value::Float(x)) => {
                v.push(x);
                true
            }
            (ChunkValues::Bool(v), Value::Bool(x)) => {
                v.push(x);
                true
            }
            (ChunkValues::Str { dict, codes }, Value::Str(x)) => {
                codes.push(intern(dict, x));
                true
            }
            (ChunkValues::Int(v), _) => {
                v.push(0);
                false
            }
            (ChunkValues::Float(v), _) => {
                v.push(0.0);
                false
            }
            (ChunkValues::Bool(v), _) => {
                v.push(false);
                false
            }
            (ChunkValues::Str { codes, .. }, _) => {
                codes.push(0);
                false
            }
        };
        self.len += 1;
        bit_set(&mut self.validity, row, valid);
        if !valid {
            self.null_count += 1;
        }
    }
}

/// Dictionary lookup by linear scan (mutation path only — bulk builds
/// intern through the [`ChunkBuilder`]'s hash index instead). Appends in
/// first-occurrence order, preserving deterministic codes.
fn intern(dict: &mut Vec<String>, s: String) -> u32 {
    match dict.iter().position(|d| *d == s) {
        Some(i) => i as u32,
        None => {
            dict.push(s);
            (dict.len() - 1) as u32
        }
    }
}

/// Internal typed accumulator for [`ChunkBuilder`].
enum Acc {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str {
        dict: Vec<String>,
        codes: Vec<u32>,
        index: HashMap<String, u32>,
    },
}

impl Acc {
    fn new(dtype: DataType) -> Acc {
        match dtype {
            DataType::Int => Acc::Int(Vec::new()),
            DataType::Float => Acc::Float(Vec::new()),
            DataType::Bool => Acc::Bool(Vec::new()),
            DataType::Str => Acc::Str {
                dict: Vec::new(),
                codes: Vec::new(),
                index: HashMap::new(),
            },
        }
    }
}

/// Streaming builder that coerces pushed values to one dtype and seals a
/// [`Chunk`] every `target_rows` rows. String dictionaries are interned
/// through a hash index (O(1) per row) but stored in first-occurrence
/// order, so the encoding does not depend on hashing or thread count.
pub struct ChunkBuilder {
    dtype: DataType,
    target_rows: usize,
    len: usize,
    null_count: usize,
    validity: Vec<u64>,
    acc: Acc,
    chunks: Vec<Arc<Chunk>>,
}

impl ChunkBuilder {
    /// A builder sealing chunks of `target_rows` rows (minimum 1).
    pub fn new(dtype: DataType, target_rows: usize) -> ChunkBuilder {
        ChunkBuilder {
            dtype,
            target_rows: target_rows.max(1),
            len: 0,
            null_count: 0,
            validity: Vec::new(),
            acc: Acc::new(dtype),
            chunks: Vec::new(),
        }
    }

    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Rows pushed so far (sealed + pending).
    pub fn rows(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum::<usize>() + self.len
    }

    /// Append `value`, coercing to the builder's dtype; lossy coercions
    /// become null (pandas `errors="coerce"` semantics).
    pub fn push(&mut self, value: Value) {
        let row = self.len;
        if row / 64 >= self.validity.len() {
            self.validity.push(0);
        }
        let valid = match (&mut self.acc, value.coerce(self.dtype)) {
            (Acc::Int(v), Value::Int(x)) => {
                v.push(x);
                true
            }
            (Acc::Float(v), Value::Float(x)) => {
                v.push(x);
                true
            }
            (Acc::Bool(v), Value::Bool(x)) => {
                v.push(x);
                true
            }
            (Acc::Str { dict, codes, index }, Value::Str(x)) => {
                let code = match index.get(&x) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(x.clone());
                        index.insert(x, c);
                        c
                    }
                };
                codes.push(code);
                true
            }
            (Acc::Int(v), _) => {
                v.push(0);
                false
            }
            (Acc::Float(v), _) => {
                v.push(0.0);
                false
            }
            (Acc::Bool(v), _) => {
                v.push(false);
                false
            }
            (Acc::Str { codes, .. }, _) => {
                codes.push(0);
                false
            }
        };
        self.len += 1;
        bit_set(&mut self.validity, row, valid);
        if !valid {
            self.null_count += 1;
        }
        if self.len >= self.target_rows {
            self.seal();
        }
    }

    /// Seal the pending rows into a chunk (no-op when empty).
    fn seal(&mut self) {
        if self.len == 0 {
            return;
        }
        let values = match std::mem::replace(&mut self.acc, Acc::new(self.dtype)) {
            Acc::Int(v) => ChunkValues::Int(v),
            Acc::Float(v) => ChunkValues::Float(v),
            Acc::Bool(v) => ChunkValues::Bool(v),
            Acc::Str { dict, codes, .. } => ChunkValues::Str { dict, codes },
        };
        self.chunks.push(Arc::new(Chunk {
            len: self.len,
            null_count: self.null_count,
            validity: std::mem::take(&mut self.validity),
            values,
        }));
        self.len = 0;
        self.null_count = 0;
    }

    /// Seal the tail and return every chunk in order.
    pub fn finish(mut self) -> Vec<Arc<Chunk>> {
        self.seal();
        self.chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_seals_at_target_rows() {
        let mut b = ChunkBuilder::new(DataType::Int, 3);
        for i in 0..8 {
            b.push(Value::Int(i));
        }
        let chunks = b.finish();
        let lens: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(lens, vec![3, 3, 2]);
        assert_eq!(chunks[2].value(1), Value::Int(7));
    }

    #[test]
    fn builder_coerces_and_counts_nulls() {
        let mut b = ChunkBuilder::new(DataType::Int, 10);
        b.push(Value::Int(1));
        b.push(Value::Str("oops".into()));
        b.push(Value::Null);
        b.push(Value::Float(4.0));
        let chunks = b.finish();
        assert_eq!(chunks.len(), 1);
        let c = &chunks[0];
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.value(0), Value::Int(1));
        assert!(c.value(1).is_null());
        assert!(c.value(2).is_null());
        assert_eq!(c.value(3), Value::Int(4));
    }

    #[test]
    fn dictionary_codes_are_first_occurrence_order() {
        let mut b = ChunkBuilder::new(DataType::Str, 100);
        for s in ["teal", "red", "teal", "green", "red", "teal"] {
            b.push(Value::Str(s.into()));
        }
        let chunks = b.finish();
        match chunks[0].values() {
            ChunkValues::Str { dict, codes } => {
                assert_eq!(dict, &["teal", "red", "green"]);
                assert_eq!(codes, &[0, 1, 0, 2, 1, 0]);
            }
            other => panic!("expected Str chunk, got {other:?}"),
        }
    }

    #[test]
    fn dictionary_resets_per_chunk() {
        let mut b = ChunkBuilder::new(DataType::Str, 2);
        for s in ["a", "b", "b", "c"] {
            b.push(Value::Str(s.into()));
        }
        let chunks = b.finish();
        let dicts: Vec<&[String]> = chunks
            .iter()
            .map(|c| match c.values() {
                ChunkValues::Str { dict, .. } => dict.as_slice(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(dicts[0], ["a".to_string(), "b".to_string()]);
        assert_eq!(dicts[1], ["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn null_placeholders_are_canonical() {
        // Two logically-equal chunks built differently serialize the
        // same: a null slot always stores the placeholder.
        let mut a = Chunk::empty(DataType::Int);
        a.push_value(Value::Int(7));
        a.push_value(Value::Null);
        let mut b = Chunk::empty(DataType::Int);
        b.push_value(Value::Int(7));
        b.push_value(Value::Int(42));
        b.set_value(1, Value::Null);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn set_value_tracks_null_count_and_validity() {
        let mut c = Chunk::nulls(DataType::Float, 3);
        assert_eq!(c.null_count(), 3);
        c.set_value(1, Value::Float(2.5));
        assert_eq!(c.null_count(), 2);
        assert!(c.is_valid(1) && !c.is_valid(0));
        assert_eq!(c.value(1), Value::Float(2.5));
        c.set_value(1, Value::Null);
        assert_eq!(c.null_count(), 3);
    }

    #[test]
    fn numeric_values_skip_nulls_keep_non_finite() {
        let mut c = Chunk::empty(DataType::Float);
        c.push_value(Value::Float(1.0));
        c.push_value(Value::Null);
        c.push_value(Value::Float(f64::NAN));
        let mut out = Vec::new();
        c.numeric_values_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], 1.0);
        assert!(out[1].is_nan());
    }

    #[test]
    fn resident_bytes_counts_buffers() {
        let mut b = ChunkBuilder::new(DataType::Str, 10);
        b.push(Value::Str("hello".into()));
        b.push(Value::Str("hello".into()));
        let chunks = b.finish();
        // 1 validity word + 2 codes + 1 dict entry ("hello").
        assert!(chunks[0].resident_bytes() >= 8 + 8 + 5);
    }
}

//! On-disk dataset layout.
//!
//! The paper's backend creates, per uploaded dataset, a folder named after
//! the file holding `dirty.csv`, a `repaired.csv` after repair, and a
//! subfolder for the dataset's Delta table. This module reproduces that
//! layout so DataSheets can reference stable paths.

use std::fs;
use std::path::{Path, PathBuf};

use crate::csv::{read_csv_path, write_csv_path, CsvOptions};
use crate::error::TableError;
use crate::table::Table;

/// Well-known file names inside a dataset directory.
pub const DIRTY_FILE: &str = "dirty.csv";
pub const REPAIRED_FILE: &str = "repaired.csv";
pub const DELTA_DIR: &str = "delta";

/// A dataset's directory on disk.
#[derive(Debug, Clone)]
pub struct DatasetDir {
    root: PathBuf,
}

impl DatasetDir {
    /// Create (or open) the directory `<base>/<dataset_name>`.
    pub fn create(base: impl AsRef<Path>, dataset_name: &str) -> Result<DatasetDir, TableError> {
        let root = base.as_ref().join(dataset_name);
        fs::create_dir_all(root.join(DELTA_DIR))?;
        Ok(DatasetDir { root })
    }

    /// Open an existing directory without creating anything.
    pub fn open(root: impl Into<PathBuf>) -> DatasetDir {
        DatasetDir { root: root.into() }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn dirty_path(&self) -> PathBuf {
        self.root.join(DIRTY_FILE)
    }

    pub fn repaired_path(&self) -> PathBuf {
        self.root.join(REPAIRED_FILE)
    }

    pub fn delta_path(&self) -> PathBuf {
        self.root.join(DELTA_DIR)
    }

    /// Persist the uploaded table as `dirty.csv`.
    pub fn store_dirty(&self, table: &Table) -> Result<(), TableError> {
        write_csv_path(table, self.dirty_path())
    }

    /// Persist a repaired table as `repaired.csv`.
    pub fn store_repaired(&self, table: &Table) -> Result<(), TableError> {
        write_csv_path(table, self.repaired_path())
    }

    /// Load `dirty.csv` back.
    pub fn load_dirty(&self) -> Result<Table, TableError> {
        read_csv_path(self.dirty_path(), &CsvOptions::default())
    }

    /// Load `repaired.csv` back.
    pub fn load_repaired(&self) -> Result<Table, TableError> {
        read_csv_path(self.repaired_path(), &CsvOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn layout_round_trip() {
        let base = std::env::temp_dir().join(format!("datalens_dsdir_{}", std::process::id()));
        let dir = DatasetDir::create(&base, "flights").unwrap();
        assert!(dir.delta_path().is_dir());
        let t = Table::new("flights", vec![Column::from_i64("x", [Some(1), Some(2)])]).unwrap();
        dir.store_dirty(&t).unwrap();
        let back = dir.load_dirty().unwrap();
        assert_eq!(back.shape(), (2, 1));
        dir.store_repaired(&t).unwrap();
        assert!(dir.repaired_path().is_file());
        assert_eq!(dir.load_repaired().unwrap().shape(), (2, 1));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn missing_files_error() {
        let dir = DatasetDir::open("/nonexistent/never");
        assert!(dir.load_dirty().is_err());
    }
}

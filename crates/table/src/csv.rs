//! CSV reading and writing (RFC 4180 quoting, schema inference).
//!
//! The reader is **streaming**: bytes flow from a buffered source through
//! an incremental tokenizer (quoted fields, escaped quotes, embedded
//! newlines and CRLF are handled correctly even when split across
//! read-buffer boundaries), dtypes are inferred from a bounded sample of
//! leading records, and rows are flushed into row-group chunks as they
//! arrive — working memory stays O(row group), not O(file).
//! [`read_csv_str`] and [`read_csv_path`] are thin façades over the same
//! machinery. The writer is the exact inverse: `read(write(t)) == t` for
//! every table this crate can represent, a property pinned by proptests
//! in the crate root.

use std::fs;
use std::io;
use std::path::Path;

use crate::chunk::{ChunkBuilder, DEFAULT_CHUNK_ROWS};
use crate::column::Column;
use crate::error::TableError;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Bytes requested from the underlying reader per `read` call.
const READ_BUF_BYTES: usize = 64 * 1024;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`). Must be an ASCII character: the
    /// streaming tokenizer works on bytes.
    pub delimiter: char,
    /// Whether the first record is a header row (default true). When false,
    /// columns are named `col_0`, `col_1`, ….
    pub has_header: bool,
    /// Number of records sampled for type inference; `None` scans all
    /// rows. Defaults to one row group ([`DEFAULT_CHUNK_ROWS`]).
    ///
    /// Tradeoff: the sample is the only part of the input that must be
    /// buffered before typed chunks can be built, so a bounded sample is
    /// what keeps ingest memory O(row group). The price is that a column
    /// whose first non-numeric value appears after the sample keeps its
    /// numeric dtype and that value parses to null (pandas
    /// `errors="coerce"` semantics) instead of degrading the column to
    /// `Str`. Pass `None` to trade memory back for full-scan inference.
    pub infer_rows: Option<usize>,
    /// Rows per row-group chunk in the resulting table (default
    /// [`DEFAULT_CHUNK_ROWS`]).
    pub group_rows: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            infer_rows: Some(DEFAULT_CHUNK_ROWS),
            group_rows: DEFAULT_CHUNK_ROWS,
        }
    }
}

/// Parse CSV text into a table named `name`.
pub fn read_csv_str(name: &str, text: &str, opts: &CsvOptions) -> Result<Table, TableError> {
    read_csv_reader(name, text.as_bytes(), opts)
}

/// Read a CSV file; the table is named after the file stem. Streams the
/// file in 64 KiB slices — the whole file is never resident.
pub fn read_csv_path(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Table, TableError> {
    let path = path.as_ref();
    let file = fs::File::open(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    read_csv_reader(name, file, opts)
}

/// Parse CSV from any byte source into a table named `name`. This is the
/// streaming core behind [`read_csv_str`] and [`read_csv_path`]: records
/// are tokenised incrementally and flushed into row-group chunks, so
/// working memory is bounded by the inference sample plus one row group.
pub fn read_csv_reader(
    name: &str,
    mut reader: impl io::Read,
    opts: &CsvOptions,
) -> Result<Table, TableError> {
    if !opts.delimiter.is_ascii() {
        return Err(TableError::Csv {
            line: 1,
            message: format!("delimiter {:?} is not ASCII", opts.delimiter),
        });
    }
    let mut tokenizer = Tokenizer::new(opts.delimiter as u8);
    let mut sink = TableSink::new(opts);
    let mut records = Vec::new();
    let mut buf = vec![0u8; READ_BUF_BYTES];
    loop {
        let n = loop {
            match reader.read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TableError::Io(e)),
            }
        };
        if n == 0 {
            break;
        }
        tokenizer.feed(&buf[..n], &mut records)?;
        for rec in records.drain(..) {
            sink.process_record(rec)?;
        }
    }
    tokenizer.finish(&mut records)?;
    for rec in records.drain(..) {
        sink.process_record(rec)?;
    }
    sink.finish(name)
}

/// Serialise a table to CSV text (header included, RFC 4180 quoting).
pub fn write_csv_str(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .columns()
        .iter()
        .map(|c| quote_field(c.name(), ','))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    // In a single-column table a null row would render as a blank line,
    // which readers (ours and pandas') skip; quote it so the row survives.
    let quote_empty = table.n_cols() == 1;
    for r in table.row_indices() {
        let fields: Vec<String> = table
            .columns()
            .iter()
            .map(|c| {
                let rendered = c.get(r).render();
                if rendered.is_empty() && quote_empty {
                    "\"\"".to_string()
                } else {
                    quote_field(&rendered, ',')
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv_path(table: &Table, path: impl AsRef<Path>) -> Result<(), TableError> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, write_csv_str(table))?;
    Ok(())
}

/// Quote a field if it contains the delimiter, a quote, or a newline.
fn quote_field(raw: &str, delimiter: char) -> String {
    if raw.contains(delimiter) || raw.contains('"') || raw.contains('\n') || raw.contains('\r') {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

/// A tokenised record plus the physical line it starts on (1-based).
/// Error messages point at the line a human would open in an editor —
/// the record index drifts from it whenever a quoted field embeds
/// newlines.
struct RawRecord {
    start_line: usize,
    fields: Vec<String>,
}

/// Incremental CSV tokenizer: feed it byte slices of any size and it
/// emits complete records, honouring quoting. Records terminate on LF,
/// CRLF, or a bare CR (classic-Mac line endings); a literal CR inside a
/// field must be quoted, exactly as the writer emits it.
///
/// The three `pending_*` flags carry one-byte lookahead across `feed`
/// boundaries (closing-quote vs escaped `""`, CRLF vs bare CR, quoted-CR
/// line counting), which is what makes the parse independent of where
/// the read buffer happens to split the input.
struct Tokenizer {
    delimiter: u8,
    field: Vec<u8>,
    record: Vec<String>,
    in_quotes: bool,
    /// Physical line (1-based) of the byte about to be processed.
    line: usize,
    /// Line the current record started on.
    record_start: usize,
    /// Whether the current record has any content, so a trailing
    /// newline does not produce a phantom empty record.
    record_started: bool,
    /// Inside quotes, saw `"`: the next byte decides escaped vs closing.
    pending_quote: bool,
    /// Outside quotes, saw CR: the next byte decides CRLF vs bare CR.
    pending_cr: bool,
    /// Inside quotes, saw CR: the next byte decides its line accounting.
    pending_quoted_cr: bool,
}

impl Tokenizer {
    fn new(delimiter: u8) -> Tokenizer {
        Tokenizer {
            delimiter,
            field: Vec::new(),
            record: Vec::new(),
            in_quotes: false,
            line: 1,
            record_start: 1,
            record_started: false,
            pending_quote: false,
            pending_cr: false,
            pending_quoted_cr: false,
        }
    }

    /// Process a slice of input, appending any completed records to `out`.
    fn feed(&mut self, buf: &[u8], out: &mut Vec<RawRecord>) -> Result<(), TableError> {
        for &b in buf {
            self.step(b, out)?;
        }
        Ok(())
    }

    fn step(&mut self, b: u8, out: &mut Vec<RawRecord>) -> Result<(), TableError> {
        // Resolve one-byte lookahead left over from the previous byte
        // (possibly from a previous buffer).
        if self.pending_quote {
            self.pending_quote = false;
            if b == b'"' {
                self.field.push(b'"');
                return Ok(());
            }
            self.in_quotes = false;
        } else if self.pending_quoted_cr {
            self.pending_quoted_cr = false;
            // Quoted CR is data, but a bare one still ends a physical
            // line for error-reporting purposes (the CR of a CRLF is
            // counted by its LF instead).
            if b != b'\n' {
                self.line += 1;
            }
            self.field.push(b'\r');
        } else if self.pending_cr {
            self.pending_cr = false;
            if b != b'\n' {
                // Bare CR: terminates the record itself; the LF case
                // falls through and lets the LF terminate it below.
                self.line += 1;
                self.flush_record(out)?;
            }
        }

        if self.in_quotes {
            match b {
                b'"' => self.pending_quote = true,
                b'\n' => {
                    self.line += 1;
                    self.field.push(b'\n');
                }
                b'\r' => self.pending_quoted_cr = true,
                _ => self.field.push(b),
            }
            return Ok(());
        }
        match b {
            b'"' => {
                self.in_quotes = true;
                self.record_started = true;
            }
            d if d == self.delimiter => {
                self.push_field()?;
                self.record_started = true;
            }
            b'\r' => self.pending_cr = true,
            b'\n' => {
                self.line += 1;
                self.flush_record(out)?;
            }
            _ => {
                self.field.push(b);
                self.record_started = true;
            }
        }
        Ok(())
    }

    /// Flush remaining lookahead and the final record at end of input.
    fn finish(mut self, out: &mut Vec<RawRecord>) -> Result<(), TableError> {
        if self.pending_quote {
            // A final `"` with nothing after it closes the field.
            self.pending_quote = false;
            self.in_quotes = false;
        }
        if self.pending_quoted_cr {
            self.pending_quoted_cr = false;
            self.line += 1;
            self.field.push(b'\r');
        }
        if self.pending_cr {
            self.pending_cr = false;
            self.line += 1;
            self.flush_record(out)?;
        }
        if self.in_quotes {
            return Err(TableError::Csv {
                line: self.line,
                message: "unclosed quoted field".into(),
            });
        }
        if self.record_started || !self.field.is_empty() {
            self.push_field()?;
            out.push(RawRecord {
                start_line: self.record_start,
                fields: std::mem::take(&mut self.record),
            });
        }
        Ok(())
    }

    /// Complete the current field (validating UTF-8 at field boundaries,
    /// which are always ASCII, so multi-byte characters split across
    /// read buffers reassemble before validation).
    fn push_field(&mut self) -> Result<(), TableError> {
        let bytes = std::mem::take(&mut self.field);
        let s = String::from_utf8(bytes).map_err(|_| TableError::Csv {
            line: self.record_start,
            message: "invalid UTF-8 in field".into(),
        })?;
        self.record.push(s);
        Ok(())
    }

    /// Terminate the current record if it has content (blank lines are
    /// skipped) and reset for the next one. `self.line` has already been
    /// advanced past the terminator.
    fn flush_record(&mut self, out: &mut Vec<RawRecord>) -> Result<(), TableError> {
        if self.record_started || !self.field.is_empty() {
            self.push_field()?;
            out.push(RawRecord {
                start_line: self.record_start,
                fields: std::mem::take(&mut self.record),
            });
            self.record_started = false;
        }
        self.record_start = self.line;
        Ok(())
    }
}

/// Streaming record consumer: buffers the inference sample, fixes the
/// schema, then appends every record (buffered and live) into per-column
/// [`ChunkBuilder`]s.
struct TableSink {
    has_header: bool,
    infer_limit: Option<usize>,
    group_rows: usize,
    header: Option<Vec<String>>,
    width: Option<usize>,
    dtypes: Vec<Option<DataType>>,
    buffered: Vec<RawRecord>,
    builders: Option<Vec<ChunkBuilder>>,
}

impl TableSink {
    fn new(opts: &CsvOptions) -> TableSink {
        TableSink {
            has_header: opts.has_header,
            infer_limit: opts.infer_rows,
            group_rows: opts.group_rows,
            header: None,
            width: None,
            dtypes: Vec::new(),
            buffered: Vec::new(),
            builders: None,
        }
    }

    fn process_record(&mut self, rec: RawRecord) -> Result<(), TableError> {
        if self.has_header && self.header.is_none() {
            let header = dedupe_header(rec.fields);
            self.width = Some(header.len());
            self.dtypes = vec![None; header.len()];
            self.header = Some(header);
            return Ok(());
        }
        let width = match self.width {
            Some(w) => w,
            None => {
                // Headerless: the first data record fixes the width.
                let w = rec.fields.len();
                self.header = Some((0..w).map(|i| format!("col_{i}")).collect());
                self.dtypes = vec![None; w];
                self.width = Some(w);
                w
            }
        };
        if rec.fields.len() != width {
            return Err(TableError::Csv {
                line: rec.start_line,
                message: format!("expected {width} fields, found {}", rec.fields.len()),
            });
        }
        match &mut self.builders {
            Some(builders) => append_record(builders, &rec),
            None => {
                if self.infer_limit.is_some_and(|k| self.buffered.len() >= k) {
                    self.seal_schema();
                    if let Some(builders) = &mut self.builders {
                        append_record(builders, &rec);
                    }
                } else {
                    for (c, raw) in rec.fields.iter().enumerate() {
                        if let Some(t) = Value::infer_dtype(raw) {
                            self.dtypes[c] = Some(match self.dtypes[c] {
                                Some(prev) => prev.unify(t),
                                None => t,
                            });
                        }
                    }
                    self.buffered.push(rec);
                }
            }
        }
        Ok(())
    }

    /// Resolve dtypes from the sample and drain the buffer into typed
    /// chunk builders.
    fn seal_schema(&mut self) {
        let width = self.width.unwrap_or(0);
        let mut builders: Vec<ChunkBuilder> = (0..width)
            .map(|c| ChunkBuilder::new(self.dtypes[c].unwrap_or(DataType::Str), self.group_rows))
            .collect();
        for rec in std::mem::take(&mut self.buffered) {
            append_record(&mut builders, &rec);
        }
        self.builders = Some(builders);
    }

    fn finish(mut self, name: &str) -> Result<Table, TableError> {
        if self.builders.is_none() {
            self.seal_schema();
        }
        let header = self.header.unwrap_or_default();
        let builders = self.builders.unwrap_or_default();
        let columns: Vec<Column> = header
            .into_iter()
            .zip(builders)
            .map(|(name, b)| {
                let dtype = b.dtype();
                Column::from_chunks(name, dtype, b.finish())
            })
            .collect();
        Table::new(name, columns)
    }
}

/// Parse one record's fields into their columns' builders (typed parse,
/// lossy values become null — pandas `errors="coerce"`).
fn append_record(builders: &mut [ChunkBuilder], rec: &RawRecord) {
    for (b, raw) in builders.iter_mut().zip(&rec.fields) {
        b.push(Value::parse_typed(raw, b.dtype()).unwrap_or(Value::Null));
    }
}

/// Make header names unique by suffixing repeats with `.1`, `.2`, …
/// (mirrors pandas' mangle_dupe_cols). When a suffixed candidate itself
/// collides with another header (`a,a,a.1`), the suffix keeps probing —
/// the output never contains two equal names, so column lookup and
/// `CorrelationMatrix::get` stay unambiguous.
fn dedupe_header(header: Vec<String>) -> Vec<String> {
    use std::collections::{HashMap, HashSet};
    let mut next_suffix: HashMap<String, usize> = HashMap::new();
    let mut used: HashSet<String> = HashSet::new();
    header
        .into_iter()
        .map(|h| {
            let mut out = h.clone();
            if !used.insert(out.clone()) {
                let n = next_suffix.entry(h.clone()).or_insert(1);
                loop {
                    out = format!("{h}.{n}");
                    *n += 1;
                    if used.insert(out.clone()) {
                        break;
                    }
                }
            }
            out
        })
        .collect()
}

/// The pre-streaming whole-string parser, kept as a differential
/// reference: proptests assert the incremental tokenizer produces the
/// same records and error lines however the input is sliced.
#[cfg(test)]
mod reference {
    use super::{dedupe_header, RawRecord};
    use crate::error::TableError;

    pub(super) fn tokenize(text: &str, delimiter: char) -> Result<Vec<RawRecord>, TableError> {
        let mut records = Vec::new();
        let mut record: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut line = 1usize;
        let mut record_start = 1usize;
        let mut chars = text.chars().peekable();
        let mut record_started = false;

        while let Some(ch) = chars.next() {
            if in_quotes {
                match ch {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    '\n' => {
                        line += 1;
                        field.push(ch);
                    }
                    '\r' => {
                        if chars.peek() != Some(&'\n') {
                            line += 1;
                        }
                        field.push(ch);
                    }
                    _ => field.push(ch),
                }
                continue;
            }
            match ch {
                '"' => {
                    in_quotes = true;
                    record_started = true;
                }
                c if c == delimiter => {
                    record.push(std::mem::take(&mut field));
                    record_started = true;
                }
                '\r' => {
                    if chars.peek() != Some(&'\n') {
                        line += 1;
                        if record_started || !field.is_empty() {
                            record.push(std::mem::take(&mut field));
                            records.push(RawRecord {
                                start_line: record_start,
                                fields: std::mem::take(&mut record),
                            });
                            record_started = false;
                        }
                        record_start = line;
                    }
                }
                '\n' => {
                    line += 1;
                    if record_started || !field.is_empty() {
                        record.push(std::mem::take(&mut field));
                        records.push(RawRecord {
                            start_line: record_start,
                            fields: std::mem::take(&mut record),
                        });
                        record_started = false;
                    }
                    record_start = line;
                }
                _ => {
                    field.push(ch);
                    record_started = true;
                }
            }
        }
        if in_quotes {
            return Err(TableError::Csv {
                line,
                message: "unclosed quoted field".into(),
            });
        }
        if record_started || !field.is_empty() {
            record.push(field);
            records.push(RawRecord {
                start_line: record_start,
                fields: record,
            });
        }
        Ok(records)
    }

    /// The pre-streaming `read_csv_str`: tokenize everything, validate
    /// widths, infer over a leading sample, then materialise columns.
    pub(super) fn read_csv_str(
        name: &str,
        text: &str,
        opts: &super::CsvOptions,
    ) -> Result<crate::table::Table, TableError> {
        use crate::column::Column;
        use crate::value::{DataType, Value};

        let records = tokenize(text, opts.delimiter)?;
        let mut records = records.into_iter();
        let header: Vec<String> = if opts.has_header {
            match records.next() {
                Some(h) => dedupe_header(h.fields),
                None => Vec::new(),
            }
        } else {
            Vec::new()
        };
        let rows: Vec<RawRecord> = records.collect();
        let width = if opts.has_header {
            header.len()
        } else {
            rows.first().map_or(0, |r| r.fields.len())
        };
        let header = if opts.has_header {
            header
        } else {
            (0..width).map(|i| format!("col_{i}")).collect()
        };
        for r in &rows {
            if r.fields.len() != width {
                return Err(TableError::Csv {
                    line: r.start_line,
                    message: format!("expected {width} fields, found {}", r.fields.len()),
                });
            }
        }
        let sample = opts.infer_rows.unwrap_or(rows.len()).min(rows.len());
        let mut dtypes = vec![None::<DataType>; width];
        for row in rows.iter().take(sample) {
            for (c, raw) in row.fields.iter().enumerate() {
                if let Some(t) = Value::infer_dtype(raw) {
                    dtypes[c] = Some(match dtypes[c] {
                        Some(prev) => prev.unify(t),
                        None => t,
                    });
                }
            }
        }
        let mut columns = Vec::with_capacity(width);
        for (c, name) in header.iter().enumerate() {
            let dtype = dtypes[c].unwrap_or(DataType::Str);
            let values = rows
                .iter()
                .map(|row| Value::parse_typed(&row.fields[c], dtype).unwrap_or(Value::Null));
            columns.push(Column::from_values(name.clone(), dtype, values));
        }
        crate::table::Table::new(name, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkValues;
    use crate::value::DataType;

    fn read(text: &str) -> Table {
        read_csv_str("t", text, &CsvOptions::default()).unwrap()
    }

    #[test]
    fn basic_inference() {
        let t = read("a,b,c,d\n1,1.5,true,x\n2,2.5,false,y\n");
        let s = t.schema();
        assert_eq!(s.field_by_name("a").unwrap().dtype, DataType::Int);
        assert_eq!(s.field_by_name("b").unwrap().dtype, DataType::Float);
        assert_eq!(s.field_by_name("c").unwrap().dtype, DataType::Bool);
        assert_eq!(s.field_by_name("d").unwrap().dtype, DataType::Str);
        assert_eq!(t.shape(), (2, 4));
    }

    #[test]
    fn mixed_int_float_widens() {
        let t = read("x\n1\n2.5\n");
        assert_eq!(
            t.schema().field_by_name("x").unwrap().dtype,
            DataType::Float
        );
        assert_eq!(t.get_at(0, "x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn mixed_num_str_degrades_to_str() {
        let t = read("x\n1\nhello\n");
        assert_eq!(t.schema().field_by_name("x").unwrap().dtype, DataType::Str);
    }

    #[test]
    fn null_tokens_parse_to_null_and_do_not_affect_type() {
        let t = read("x,y\n1,\n2,NA\n3,7\n");
        assert_eq!(t.schema().field_by_name("y").unwrap().dtype, DataType::Int);
        assert!(t.get_at(0, "y").unwrap().is_null());
        assert!(t.get_at(1, "y").unwrap().is_null());
        assert_eq!(t.get_at(2, "y").unwrap(), Value::Int(7));
    }

    #[test]
    fn quoted_fields_with_commas_quotes_newlines() {
        let t = read("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",plain\n");
        assert_eq!(t.get_at(0, "a").unwrap(), Value::Str("x,y".into()));
        assert_eq!(
            t.get_at(0, "b").unwrap(),
            Value::Str("he said \"hi\"".into())
        );
        assert_eq!(t.get_at(1, "a").unwrap(), Value::Str("line1\nline2".into()));
    }

    #[test]
    fn crlf_line_endings() {
        let t = read("a,b\r\n1,2\r\n3,4\r\n");
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get_at(1, "b").unwrap(), Value::Int(4));
    }

    fn ragged_line(input: &str) -> usize {
        match read_csv_str("t", input, &CsvOptions::default()) {
            Err(TableError::Csv { line, .. }) => line,
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        assert_eq!(ragged_line("a,b\n1,2\n3\n"), 3);
    }

    #[test]
    fn ragged_row_line_skips_quoted_newlines() {
        // Regression: the error used to report the record index, which
        // drifts when a quoted field spans physical lines. The ragged
        // record "3" starts on physical line 4 here (record index 3).
        assert_eq!(ragged_line("a,b\n\"x\ny\",2\n3\n"), 4);
        // Quoted bare-CR and CRLF line breaks count the same way.
        assert_eq!(ragged_line("a,b\n\"x\ry\",2\n3\n"), 4);
        assert_eq!(ragged_line("a,b\n\"x\r\ny\",2\n3\n"), 4);
    }

    #[test]
    fn ragged_row_line_counts_bare_cr_records() {
        // Regression: a bare-CR terminator never incremented the line
        // counter, so errors after Mac-style line endings pointed at
        // the wrong line.
        assert_eq!(ragged_line("a,b\r1,2\r3\r"), 3);
    }

    #[test]
    fn mac_cr_line_endings() {
        let t = read("a,b\r1,2\r3,4\r");
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get_at(1, "b").unwrap(), Value::Int(4));
        // Blank CR lines are skipped like blank LF lines.
        let t = read("a,b\r\r1,2\r");
        assert_eq!(t.shape(), (1, 2));
    }

    #[test]
    fn bare_cr_in_data_must_be_quoted() {
        // Pinned semantics: an unquoted bare CR is a record terminator
        // (classic-Mac), so a literal CR in a value requires quoting —
        // which is exactly what the writer emits.
        let t = read("v\n1\r2\n");
        assert_eq!(t.shape(), (2, 1));
        assert_eq!(t.get_at(0, "v").unwrap(), Value::Int(1));
        assert_eq!(t.get_at(1, "v").unwrap(), Value::Int(2));
        let t = read("a,b\n\"x\ry\",2\n");
        assert_eq!(t.get_at(0, "a").unwrap(), Value::Str("x\ry".into()));
    }

    #[test]
    fn cr_bearing_value_round_trips_quoted() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals("v", [Some("a\rb"), Some("c\r\nd")])],
        )
        .unwrap();
        let text = write_csv_str(&t);
        let back = read_csv_str("t", &text, &CsvOptions::default()).unwrap();
        assert_eq!(back.get_at(0, "v").unwrap(), Value::Str("a\rb".into()));
        assert_eq!(back.get_at(1, "v").unwrap(), Value::Str("c\r\nd".into()));
    }

    #[test]
    fn unclosed_quote_errors() {
        let err = read_csv_str("t", "a\n\"oops\n", &CsvOptions::default());
        assert!(matches!(err, Err(TableError::Csv { .. })));
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "1,2\n3,4\n", &opts).unwrap();
        assert_eq!(t.column_names(), vec!["col_0", "col_1"]);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn duplicate_headers_are_mangled() {
        let t = read("a,a,a\n1,2,3\n");
        assert_eq!(t.column_names(), vec!["a", "a.1", "a.2"]);
    }

    #[test]
    fn header_mangling_is_collision_free() {
        // Regression: "a,a,a.1" used to mangle the second "a" into
        // "a.1", colliding with the literal third header.
        let t = read("a,a,a.1\n1,2,3\n");
        assert_eq!(t.column_names(), vec!["a", "a.1", "a.1.1"]);
        // A pre-existing suffixed name must not be stolen either way.
        let t = read("a.1,a,a\n1,2,3\n");
        assert_eq!(t.column_names(), vec!["a.1", "a", "a.2"]);
    }

    #[test]
    fn semicolon_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "a;b\n1;x\n", &opts).unwrap();
        assert_eq!(t.get_at(0, "b").unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn non_ascii_delimiter_is_rejected() {
        let opts = CsvOptions {
            delimiter: '→',
            ..CsvOptions::default()
        };
        let err = read_csv_str("t", "a→b\n", &opts);
        assert!(matches!(err, Err(TableError::Csv { line: 1, .. })));
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let t = read("");
        assert_eq!(t.shape(), (0, 0));
        let t = read("a,b\n");
        assert_eq!(t.shape(), (0, 2));
    }

    #[test]
    fn infer_rows_limits_sample() {
        // With only the first row sampled, "x" in row 2 is coerced to null
        // rather than degrading the column to Str.
        let opts = CsvOptions {
            infer_rows: Some(1),
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "a\n1\nx\n", &opts).unwrap();
        assert_eq!(t.schema().field_by_name("a").unwrap().dtype, DataType::Int);
        assert!(t.get_at(1, "a").unwrap().is_null());
    }

    #[test]
    fn full_scan_inference_with_none() {
        let opts = CsvOptions {
            infer_rows: None,
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "a\n1\nx\n", &opts).unwrap();
        assert_eq!(t.schema().field_by_name("a").unwrap().dtype, DataType::Str);
    }

    #[test]
    fn group_rows_control_chunking() {
        let mut text = String::from("a,b\n");
        for i in 0..10 {
            text.push_str(&format!("{i},{}\n", i * 2));
        }
        let opts = CsvOptions {
            group_rows: 4,
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", &text, &opts).unwrap();
        assert_eq!(t.shape(), (10, 2));
        let lens: Vec<usize> = t.columns()[0].chunks().iter().map(|c| c.len()).collect();
        assert_eq!(lens, vec![4, 4, 2]);
        // Chunking is invisible to logical content.
        let whole = read_csv_str("t", &text, &CsvOptions::default()).unwrap();
        assert_eq!(t, whole);
    }

    #[test]
    fn dictionary_encoding_is_first_occurrence_and_byte_stable() {
        // Satellite: dictionary codes are assigned in first-occurrence
        // order — not hash order — so serialized tables are byte-stable
        // across runs and thread counts.
        let text = "fruit\npear\napple\npear\nfig\napple\n";
        let t = read(text);
        match t.columns()[0].chunks()[0].values() {
            ChunkValues::Str { dict, codes } => {
                assert_eq!(dict, &["pear", "apple", "fig"]);
                assert_eq!(codes, &[0, 1, 0, 2, 1]);
            }
            other => panic!("expected dictionary chunk, got {other:?}"),
        }
        let again = read(text);
        assert_eq!(
            serde_json::to_string(&t).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn write_then_read_round_trip() {
        let text = "a,b,c\n1,\"x,y\",2.5\n2,\"q\"\"q\",3.5\n";
        let t = read(text);
        let back = read(&write_csv_str(&t));
        assert_eq!(t, back);
    }

    #[test]
    fn unicode_content_survives() {
        let t = read("städte,n\nköln,1\n北京,2\n");
        assert_eq!(t.get_at(1, "städte").unwrap(), Value::Str("北京".into()));
        let back = read(&write_csv_str(&t));
        assert_eq!(t, back);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("datalens_csv_test");
        let path = dir.join("sample.csv");
        let t = read("a,b\n1,x\n2,y\n");
        write_csv_path(&t, &path).unwrap();
        let back = read_csv_path(&path, &CsvOptions::default()).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.shape(), (2, 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An `io::Read` that hands out the input in caller-chosen dribbles,
    /// forcing buffer boundaries into the middle of quoted fields,
    /// escaped quotes, CRLF pairs, and multi-byte characters.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        sizes: &'a [usize],
        turn: usize,
    }

    impl io::Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let size = self.sizes[self.turn % self.sizes.len()].max(1);
            self.turn += 1;
            let n = size.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn read_dribbled(text: &str, sizes: &[usize]) -> Result<Table, TableError> {
        read_csv_reader(
            "t",
            Dribble {
                data: text.as_bytes(),
                pos: 0,
                sizes,
                turn: 0,
            },
            &CsvOptions::default(),
        )
    }

    #[test]
    fn quoted_newlines_split_across_read_buffers() {
        // Byte-at-a-time delivery splits every construct across buffer
        // boundaries: escaped "" pairs, quoted \r\n, CRLF terminators.
        let text = "a,b\n\"x\r\ny\",\"he said \"\"hi\"\"\"\r\n\"line1\nline2\",plain\n";
        let whole = read(text);
        for sizes in [&[1usize][..], &[2][..], &[3, 1][..], &[7, 2, 5][..]] {
            let dribbled = read_dribbled(text, sizes).unwrap();
            assert_eq!(whole, dribbled, "sizes {sizes:?} diverged");
        }
    }

    #[test]
    fn ragged_error_line_survives_dribbling() {
        let text = "a,b\n\"x\ny\",2\n3\n";
        for sizes in [&[1usize][..], &[2][..], &[5, 3][..]] {
            match read_dribbled(text, sizes) {
                Err(TableError::Csv { line, .. }) => assert_eq!(line, 4),
                other => panic!("expected Csv error, got {other:?}"),
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Compare the streaming reader (under adversarial read-buffer
        /// splits) to the retained whole-string reference parser: same
        /// table, or the same error on the same physical line.
        fn assert_matches_reference(text: &str, sizes: &[usize]) {
            let opts = CsvOptions::default();
            let expected = reference::read_csv_str("t", text, &opts);
            let got = read_dribbled(text, sizes);
            match (expected, got) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "tables diverged for {text:?}"),
                (
                    Err(TableError::Csv {
                        line: a,
                        message: ma,
                    }),
                    Err(TableError::Csv {
                        line: b,
                        message: mb,
                    }),
                ) => {
                    if ma == mb {
                        assert_eq!(a, b, "error lines diverged for {text:?}");
                    } else {
                        // The reference parser tokenized the whole input
                        // before validating widths, so an unclosed quote
                        // at EOF outranked an earlier ragged row; the
                        // streaming reader reports errors in document
                        // order instead. The divergence is only ever in
                        // that direction.
                        assert!(
                            mb.starts_with("expected") && ma.starts_with("unclosed") && b <= a,
                            "unexpected error divergence for {text:?}: \
                             {ma:?}@{a} vs {mb:?}@{b}"
                        );
                    }
                }
                (e, g) => panic!("outcome diverged for {text:?}: {e:?} vs {g:?}"),
            }
        }

        proptest! {
            /// Satellite regression: quoted fields containing `\n`/`\r\n`
            /// split across read-buffer boundaries round-trip identically
            /// to the whole-string parser, and ragged-row errors report
            /// the same physical line.
            #[test]
            fn dribbled_streaming_matches_whole_string_parser(
                text in "[a-c0-9,\"\r\n ]{0,48}",
                sizes in proptest::collection::vec(1usize..8, 1..12),
            ) {
                assert_matches_reference(&text, &sizes);
            }

            /// Quoting-heavy inputs (forced quote density) agree too.
            #[test]
            fn quote_dense_inputs_match_reference(
                cells in proptest::collection::vec("[a-b\"\r\n,]{0,6}", 1..10),
                sizes in proptest::collection::vec(1usize..5, 1..6),
            ) {
                let text = cells.join("\"");
                assert_matches_reference(&text, &sizes);
            }

            /// Row-group size never changes logical content: tiny groups
            /// (forcing values across chunk boundaries) parse equal to
            /// one big group.
            #[test]
            fn group_rows_are_invisible_to_content(
                rows in proptest::collection::vec("[a-d]{0,5}", 1..40),
                group in 1usize..9,
            ) {
                let mut text = String::from("h\n");
                for r in &rows {
                    text.push('"');
                    text.push_str(r);
                    text.push_str("\"\n");
                }
                let small = read_csv_str("t", &text, &CsvOptions {
                    group_rows: group,
                    ..CsvOptions::default()
                }).unwrap();
                let big = read_csv_str("t", &text, &CsvOptions::default()).unwrap();
                prop_assert_eq!(small, big);
            }
        }
    }
}

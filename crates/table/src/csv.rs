//! CSV reading and writing (RFC 4180 quoting, schema inference).
//!
//! The reader tokenises quoted fields (including embedded delimiters,
//! escaped quotes, and embedded newlines), infers a per-column type from a
//! configurable sample, then materialises a typed [`Table`]. The writer is
//! the exact inverse: `read(write(t)) == t` for every table this crate can
//! represent, a property pinned by proptests in the crate root.

use std::fs;
use std::path::Path;

use crate::column::Column;
use crate::error::TableError;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header row (default true). When false,
    /// columns are named `col_0`, `col_1`, ….
    pub has_header: bool,
    /// Number of records sampled for type inference; `None` scans all rows.
    pub infer_rows: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            infer_rows: None,
        }
    }
}

/// Parse CSV text into a table named `name`.
pub fn read_csv_str(name: &str, text: &str, opts: &CsvOptions) -> Result<Table, TableError> {
    let records = tokenize(text, opts.delimiter)?;
    let mut records = records.into_iter();

    let header: Vec<String> = if opts.has_header {
        match records.next() {
            Some(h) => dedupe_header(h.fields),
            None => Vec::new(),
        }
    } else {
        Vec::new()
    };

    let rows: Vec<RawRecord> = records.collect();

    let width = if opts.has_header {
        header.len()
    } else {
        rows.first().map_or(0, |r| r.fields.len())
    };
    let header = if opts.has_header {
        header
    } else {
        (0..width).map(|i| format!("col_{i}")).collect()
    };

    for r in &rows {
        if r.fields.len() != width {
            return Err(TableError::Csv {
                line: r.start_line,
                message: format!("expected {width} fields, found {}", r.fields.len()),
            });
        }
    }

    // Infer one type per column from the sample.
    let sample = opts.infer_rows.unwrap_or(rows.len()).min(rows.len());
    let mut dtypes = vec![None::<DataType>; width];
    for row in rows.iter().take(sample) {
        for (c, raw) in row.fields.iter().enumerate() {
            if let Some(t) = Value::infer_dtype(raw) {
                dtypes[c] = Some(match dtypes[c] {
                    Some(prev) => prev.unify(t),
                    None => t,
                });
            }
        }
    }

    let mut columns = Vec::with_capacity(width);
    for (c, name) in header.iter().enumerate() {
        let dtype = dtypes[c].unwrap_or(DataType::Str);
        let values = rows
            .iter()
            .map(|row| Value::parse_typed(&row.fields[c], dtype).unwrap_or(Value::Null));
        columns.push(Column::from_values(name.clone(), dtype, values));
    }

    Table::new(name, columns)
}

/// Read a CSV file; the table is named after the file stem.
pub fn read_csv_path(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Table, TableError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    read_csv_str(name, &text, opts)
}

/// Serialise a table to CSV text (header included, RFC 4180 quoting).
pub fn write_csv_str(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .columns()
        .iter()
        .map(|c| quote_field(c.name(), ','))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    // In a single-column table a null row would render as a blank line,
    // which readers (ours and pandas') skip; quote it so the row survives.
    let quote_empty = table.n_cols() == 1;
    for r in table.row_indices() {
        let fields: Vec<String> = table
            .columns()
            .iter()
            .map(|c| {
                let rendered = c.get(r).render();
                if rendered.is_empty() && quote_empty {
                    "\"\"".to_string()
                } else {
                    quote_field(&rendered, ',')
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv_path(table: &Table, path: impl AsRef<Path>) -> Result<(), TableError> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, write_csv_str(table))?;
    Ok(())
}

/// Quote a field if it contains the delimiter, a quote, or a newline.
fn quote_field(raw: &str, delimiter: char) -> String {
    if raw.contains(delimiter) || raw.contains('"') || raw.contains('\n') || raw.contains('\r') {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

/// A tokenised record plus the physical line it starts on (1-based).
/// Error messages point at the line a human would open in an editor —
/// the record index drifts from it whenever a quoted field embeds
/// newlines.
struct RawRecord {
    start_line: usize,
    fields: Vec<String>,
}

/// Split CSV text into records of fields, honouring quoting. Records
/// terminate on LF, CRLF, or a bare CR (classic-Mac line endings); a
/// literal CR inside a field must be quoted, exactly as the writer
/// emits it.
fn tokenize(text: &str, delimiter: char) -> Result<Vec<RawRecord>, TableError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut record_start = 1usize;
    let mut chars = text.chars().peekable();
    // Tracks whether the current record has any content, so a trailing
    // newline does not produce a phantom empty record.
    let mut record_started = false;

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(ch);
                }
                '\r' => {
                    // Quoted CR is data, but a bare one still ends a
                    // physical line for error-reporting purposes (the
                    // CR of a CRLF is counted by its LF instead).
                    if chars.peek() != Some(&'\n') {
                        line += 1;
                    }
                    field.push(ch);
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                in_quotes = true;
                record_started = true;
            }
            c if c == delimiter => {
                record.push(std::mem::take(&mut field));
                record_started = true;
            }
            '\r' => {
                // CRLF: swallow the CR and let the LF terminate the
                // record. A bare CR terminates the record itself and,
                // like LF, ends a physical line.
                if chars.peek() != Some(&'\n') {
                    line += 1;
                    if record_started || !field.is_empty() {
                        record.push(std::mem::take(&mut field));
                        records.push(RawRecord {
                            start_line: record_start,
                            fields: std::mem::take(&mut record),
                        });
                        record_started = false;
                    }
                    record_start = line;
                }
            }
            '\n' => {
                line += 1;
                if record_started || !field.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(RawRecord {
                        start_line: record_start,
                        fields: std::mem::take(&mut record),
                    });
                    record_started = false;
                }
                record_start = line;
            }
            _ => {
                field.push(ch);
                record_started = true;
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv {
            line,
            message: "unclosed quoted field".into(),
        });
    }
    if record_started || !field.is_empty() {
        record.push(field);
        records.push(RawRecord {
            start_line: record_start,
            fields: record,
        });
    }
    Ok(records)
}

/// Make header names unique by suffixing repeats with `.1`, `.2`, …
/// (mirrors pandas' mangle_dupe_cols). When a suffixed candidate itself
/// collides with another header (`a,a,a.1`), the suffix keeps probing —
/// the output never contains two equal names, so column lookup and
/// `CorrelationMatrix::get` stay unambiguous.
fn dedupe_header(header: Vec<String>) -> Vec<String> {
    use std::collections::{HashMap, HashSet};
    let mut next_suffix: HashMap<String, usize> = HashMap::new();
    let mut used: HashSet<String> = HashSet::new();
    header
        .into_iter()
        .map(|h| {
            let mut out = h.clone();
            if !used.insert(out.clone()) {
                let n = next_suffix.entry(h.clone()).or_insert(1);
                loop {
                    out = format!("{h}.{n}");
                    *n += 1;
                    if used.insert(out.clone()) {
                        break;
                    }
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn read(text: &str) -> Table {
        read_csv_str("t", text, &CsvOptions::default()).unwrap()
    }

    #[test]
    fn basic_inference() {
        let t = read("a,b,c,d\n1,1.5,true,x\n2,2.5,false,y\n");
        let s = t.schema();
        assert_eq!(s.field_by_name("a").unwrap().dtype, DataType::Int);
        assert_eq!(s.field_by_name("b").unwrap().dtype, DataType::Float);
        assert_eq!(s.field_by_name("c").unwrap().dtype, DataType::Bool);
        assert_eq!(s.field_by_name("d").unwrap().dtype, DataType::Str);
        assert_eq!(t.shape(), (2, 4));
    }

    #[test]
    fn mixed_int_float_widens() {
        let t = read("x\n1\n2.5\n");
        assert_eq!(
            t.schema().field_by_name("x").unwrap().dtype,
            DataType::Float
        );
        assert_eq!(t.get_at(0, "x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn mixed_num_str_degrades_to_str() {
        let t = read("x\n1\nhello\n");
        assert_eq!(t.schema().field_by_name("x").unwrap().dtype, DataType::Str);
    }

    #[test]
    fn null_tokens_parse_to_null_and_do_not_affect_type() {
        let t = read("x,y\n1,\n2,NA\n3,7\n");
        assert_eq!(t.schema().field_by_name("y").unwrap().dtype, DataType::Int);
        assert!(t.get_at(0, "y").unwrap().is_null());
        assert!(t.get_at(1, "y").unwrap().is_null());
        assert_eq!(t.get_at(2, "y").unwrap(), Value::Int(7));
    }

    #[test]
    fn quoted_fields_with_commas_quotes_newlines() {
        let t = read("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",plain\n");
        assert_eq!(t.get_at(0, "a").unwrap(), Value::Str("x,y".into()));
        assert_eq!(
            t.get_at(0, "b").unwrap(),
            Value::Str("he said \"hi\"".into())
        );
        assert_eq!(t.get_at(1, "a").unwrap(), Value::Str("line1\nline2".into()));
    }

    #[test]
    fn crlf_line_endings() {
        let t = read("a,b\r\n1,2\r\n3,4\r\n");
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get_at(1, "b").unwrap(), Value::Int(4));
    }

    fn ragged_line(input: &str) -> usize {
        match read_csv_str("t", input, &CsvOptions::default()) {
            Err(TableError::Csv { line, .. }) => line,
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        assert_eq!(ragged_line("a,b\n1,2\n3\n"), 3);
    }

    #[test]
    fn ragged_row_line_skips_quoted_newlines() {
        // Regression: the error used to report the record index, which
        // drifts when a quoted field spans physical lines. The ragged
        // record "3" starts on physical line 4 here (record index 3).
        assert_eq!(ragged_line("a,b\n\"x\ny\",2\n3\n"), 4);
        // Quoted bare-CR and CRLF line breaks count the same way.
        assert_eq!(ragged_line("a,b\n\"x\ry\",2\n3\n"), 4);
        assert_eq!(ragged_line("a,b\n\"x\r\ny\",2\n3\n"), 4);
    }

    #[test]
    fn ragged_row_line_counts_bare_cr_records() {
        // Regression: a bare-CR terminator never incremented the line
        // counter, so errors after Mac-style line endings pointed at
        // the wrong line.
        assert_eq!(ragged_line("a,b\r1,2\r3\r"), 3);
    }

    #[test]
    fn mac_cr_line_endings() {
        let t = read("a,b\r1,2\r3,4\r");
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get_at(1, "b").unwrap(), Value::Int(4));
        // Blank CR lines are skipped like blank LF lines.
        let t = read("a,b\r\r1,2\r");
        assert_eq!(t.shape(), (1, 2));
    }

    #[test]
    fn bare_cr_in_data_must_be_quoted() {
        // Pinned semantics: an unquoted bare CR is a record terminator
        // (classic-Mac), so a literal CR in a value requires quoting —
        // which is exactly what the writer emits.
        let t = read("v\n1\r2\n");
        assert_eq!(t.shape(), (2, 1));
        assert_eq!(t.get_at(0, "v").unwrap(), Value::Int(1));
        assert_eq!(t.get_at(1, "v").unwrap(), Value::Int(2));
        let t = read("a,b\n\"x\ry\",2\n");
        assert_eq!(t.get_at(0, "a").unwrap(), Value::Str("x\ry".into()));
    }

    #[test]
    fn cr_bearing_value_round_trips_quoted() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals("v", [Some("a\rb"), Some("c\r\nd")])],
        )
        .unwrap();
        let text = write_csv_str(&t);
        let back = read_csv_str("t", &text, &CsvOptions::default()).unwrap();
        assert_eq!(back.get_at(0, "v").unwrap(), Value::Str("a\rb".into()));
        assert_eq!(back.get_at(1, "v").unwrap(), Value::Str("c\r\nd".into()));
    }

    #[test]
    fn unclosed_quote_errors() {
        let err = read_csv_str("t", "a\n\"oops\n", &CsvOptions::default());
        assert!(matches!(err, Err(TableError::Csv { .. })));
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "1,2\n3,4\n", &opts).unwrap();
        assert_eq!(t.column_names(), vec!["col_0", "col_1"]);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn duplicate_headers_are_mangled() {
        let t = read("a,a,a\n1,2,3\n");
        assert_eq!(t.column_names(), vec!["a", "a.1", "a.2"]);
    }

    #[test]
    fn header_mangling_is_collision_free() {
        // Regression: "a,a,a.1" used to mangle the second "a" into
        // "a.1", colliding with the literal third header.
        let t = read("a,a,a.1\n1,2,3\n");
        assert_eq!(t.column_names(), vec!["a", "a.1", "a.1.1"]);
        // A pre-existing suffixed name must not be stolen either way.
        let t = read("a.1,a,a\n1,2,3\n");
        assert_eq!(t.column_names(), vec!["a.1", "a", "a.2"]);
    }

    #[test]
    fn semicolon_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "a;b\n1;x\n", &opts).unwrap();
        assert_eq!(t.get_at(0, "b").unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let t = read("");
        assert_eq!(t.shape(), (0, 0));
        let t = read("a,b\n");
        assert_eq!(t.shape(), (0, 2));
    }

    #[test]
    fn infer_rows_limits_sample() {
        // With only the first row sampled, "x" in row 2 is coerced to null
        // rather than degrading the column to Str.
        let opts = CsvOptions {
            infer_rows: Some(1),
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "a\n1\nx\n", &opts).unwrap();
        assert_eq!(t.schema().field_by_name("a").unwrap().dtype, DataType::Int);
        assert!(t.get_at(1, "a").unwrap().is_null());
    }

    #[test]
    fn write_then_read_round_trip() {
        let text = "a,b,c\n1,\"x,y\",2.5\n2,\"q\"\"q\",3.5\n";
        let t = read(text);
        let back = read(&write_csv_str(&t));
        assert_eq!(t, back);
    }

    #[test]
    fn unicode_content_survives() {
        let t = read("städte,n\nköln,1\n北京,2\n");
        assert_eq!(t.get_at(1, "städte").unwrap(), Value::Str("北京".into()));
        let back = read(&write_csv_str(&t));
        assert_eq!(t, back);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("datalens_csv_test");
        let path = dir.join("sample.csv");
        let t = read("a,b\n1,x\n2,y\n");
        write_csv_path(&t, &path).unwrap();
        let back = read_csv_path(&path, &CsvOptions::default()).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.shape(), (2, 2));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The [`Table`]: an ordered collection of equal-length [`Column`]s.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::TableError;
use crate::schema::{Field, Schema};
use crate::value::Value;

/// Address of a single cell: `(row, column index)`.
///
/// Every error-detection tool in the workspace reports its findings as a set
/// of `CellRef`s, which is what makes cross-tool consolidation possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellRef {
    pub row: usize,
    pub col: usize,
}

impl CellRef {
    pub fn new(row: usize, col: usize) -> CellRef {
        CellRef { row, col }
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// An in-memory columnar table with a named, typed schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Build a table from columns; all columns must share one length and
    /// have unique names.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Table, TableError> {
        let rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != rows {
                return Err(TableError::LengthMismatch {
                    expected: rows,
                    got: c.len(),
                });
            }
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name() == c.name()) {
                return Err(TableError::DuplicateColumn(c.name().to_string()));
            }
        }
        Ok(Table {
            name: name.into(),
            columns,
            rows,
        })
    }

    /// An empty table with the given schema (zero rows).
    pub fn empty(name: impl Into<String>, schema: &Schema) -> Table {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.name.clone(), f.dtype))
            .collect();
        Table {
            name: name.into(),
            columns,
            rows: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// `(rows, columns)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.columns.len())
    }

    pub fn n_rows(&self) -> usize {
        self.rows
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The table's schema, derived from its columns.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field::new(c.name(), c.dtype()))
                .collect(),
        )
        .expect("columns have unique names by construction")
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Total number of row-group chunks across all columns.
    pub fn chunk_count(&self) -> usize {
        self.columns.iter().map(|c| c.chunks().len()).sum()
    }

    /// Heap bytes resident across all columns' chunk buffers.
    pub fn resident_bytes(&self) -> usize {
        self.columns.iter().map(Column::resident_bytes).sum()
    }

    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// Cell value at `cell`, with bounds checking.
    pub fn get(&self, cell: CellRef) -> Result<Value, TableError> {
        if cell.row >= self.rows {
            return Err(TableError::RowOutOfBounds {
                row: cell.row,
                rows: self.rows,
            });
        }
        let col = self
            .columns
            .get(cell.col)
            .ok_or_else(|| TableError::UnknownColumn(format!("#{}", cell.col)))?;
        Ok(col.get(cell.row))
    }

    /// Cell value addressed by `(row, column name)`.
    pub fn get_at(&self, row: usize, column: &str) -> Result<Value, TableError> {
        let col = self
            .column_index(column)
            .ok_or_else(|| TableError::UnknownColumn(column.to_string()))?;
        self.get(CellRef::new(row, col))
    }

    /// Overwrite a cell, coercing to the column's type.
    pub fn set(&mut self, cell: CellRef, value: Value) -> Result<(), TableError> {
        if cell.row >= self.rows {
            return Err(TableError::RowOutOfBounds {
                row: cell.row,
                rows: self.rows,
            });
        }
        let col = self
            .columns
            .get_mut(cell.col)
            .ok_or_else(|| TableError::UnknownColumn(format!("#{}", cell.col)))?;
        col.set(cell.row, value);
        Ok(())
    }

    /// Materialise row `row` as a `Vec<Value>`.
    pub fn row(&self, row: usize) -> Result<Vec<Value>, TableError> {
        if row >= self.rows {
            return Err(TableError::RowOutOfBounds {
                row,
                rows: self.rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// Append a row of values (one per column, coerced per column type).
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), TableError> {
        if values.len() != self.columns.len() {
            return Err(TableError::LengthMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Iterator over all row indices.
    pub fn row_indices(&self) -> std::ops::Range<usize> {
        0..self.rows
    }

    /// Iterator over every cell reference in row-major order.
    pub fn cell_refs(&self) -> impl Iterator<Item = CellRef> + '_ {
        let cols = self.columns.len();
        (0..self.rows).flat_map(move |r| (0..cols).map(move |c| CellRef::new(r, c)))
    }

    /// New table containing only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table, TableError> {
        let mut cols = Vec::with_capacity(names.len());
        for name in names {
            let c = self
                .column_by_name(name)
                .ok_or_else(|| TableError::UnknownColumn((*name).to_string()))?;
            cols.push(c.clone());
        }
        Table::new(self.name.clone(), cols)
    }

    /// New table dropping the named columns.
    pub fn drop_columns(&self, names: &[&str]) -> Result<Table, TableError> {
        for n in names {
            if self.column_index(n).is_none() {
                return Err(TableError::UnknownColumn((*n).to_string()));
            }
        }
        let cols = self
            .columns
            .iter()
            .filter(|c| !names.contains(&c.name()))
            .cloned()
            .collect();
        Table::new(self.name.clone(), cols)
    }

    /// New table with `column` appended.
    pub fn with_column(&self, column: Column) -> Result<Table, TableError> {
        if !self.columns.is_empty() && column.len() != self.rows {
            return Err(TableError::LengthMismatch {
                expected: self.rows,
                got: column.len(),
            });
        }
        let mut cols = self.columns.clone();
        cols.push(column);
        Table::new(self.name.clone(), cols)
    }

    /// New table containing the rows at `indices`, in that order
    /// (duplicates allowed). Out-of-range indices error.
    pub fn take(&self, indices: &[usize]) -> Result<Table, TableError> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.rows) {
            return Err(TableError::RowOutOfBounds {
                row: bad,
                rows: self.rows,
            });
        }
        let cols = self.columns.iter().map(|c| c.take(indices)).collect();
        Table::new(self.name.clone(), cols)
    }

    /// New table keeping rows where `pred(row_index)` holds.
    pub fn filter_rows(&self, mut pred: impl FnMut(usize) -> bool) -> Table {
        let idx: Vec<usize> = (0..self.rows).filter(|&i| pred(i)).collect();
        self.take(&idx).expect("filtered indices are in range")
    }

    /// First `n` rows (or all, if fewer).
    pub fn head(&self, n: usize) -> Table {
        let idx: Vec<usize> = (0..self.rows.min(n)).collect();
        self.take(&idx).expect("head indices are in range")
    }

    /// Total number of null cells in the table.
    pub fn null_count(&self) -> usize {
        self.columns.iter().map(Column::null_count).sum()
    }

    /// Indices of rows that are exact duplicates of an earlier row.
    pub fn duplicate_rows(&self) -> Vec<usize> {
        use std::collections::HashMap;
        let mut seen: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut dups = Vec::new();
        for r in 0..self.rows {
            let row = self.row(r).expect("in range");
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(row) {
                e.insert(r);
            } else {
                dups.push(r);
            }
        }
        dups
    }

    /// New table with exact duplicate rows removed (first occurrence
    /// kept) — the "removing duplicates" cleaning step of the paper's
    /// introduction.
    pub fn drop_duplicates(&self) -> Table {
        let dups: std::collections::HashSet<usize> = self.duplicate_rows().into_iter().collect();
        self.filter_rows(|r| !dups.contains(&r))
    }

    /// Replace a column wholesale (matched by name).
    pub fn replace_column(&mut self, column: Column) -> Result<(), TableError> {
        if column.len() != self.rows {
            return Err(TableError::LengthMismatch {
                expected: self.rows,
                got: column.len(),
            });
        }
        let idx = self
            .column_index(column.name())
            .ok_or_else(|| TableError::UnknownColumn(column.name().to_string()))?;
        self.columns[idx] = column;
        Ok(())
    }

    /// Cells where the two tables disagree. Tables must have identical
    /// shape; used to compute ground-truth error masks (dirty vs. clean).
    pub fn diff_cells(&self, other: &Table) -> Result<Vec<CellRef>, TableError> {
        if self.shape() != other.shape() {
            return Err(TableError::LengthMismatch {
                expected: self.rows,
                got: other.rows,
            });
        }
        let mut out = Vec::new();
        for cell in self.cell_refs() {
            if self.get(cell)? != other.get(cell)? {
                out.push(cell);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Table {
    /// Render the first rows as an aligned text grid, like `DataFrame.head()`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_ROWS: usize = 10;
        let names: Vec<String> = self.columns.iter().map(|c| c.name().to_string()).collect();
        let shown = self.rows.min(MAX_ROWS);
        let mut grid: Vec<Vec<String>> = vec![names];
        for r in 0..shown {
            grid.push(self.columns.iter().map(|c| c.get(r).to_string()).collect());
        }
        let widths: Vec<usize> = (0..self.columns.len())
            .map(|c| {
                grid.iter()
                    .map(|row| row[c].chars().count())
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        for (i, row) in grid.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
            if i == 0 {
                writeln!(
                    f,
                    "{}",
                    "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
                )?;
            }
        }
        if self.rows > shown {
            writeln!(f, "... {} more rows", self.rows - shown)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sample() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_i64("id", [Some(1), Some(2), Some(3)]),
                Column::from_str_vals("city", [Some("ulm"), None, Some("bonn")]),
                Column::from_f64("pop", [Some(120.0), Some(330.0), Some(310.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths_and_names() {
        let err = Table::new(
            "t",
            vec![
                Column::from_i64("a", [Some(1)]),
                Column::from_i64("b", [Some(1), Some(2)]),
            ],
        );
        assert!(matches!(err, Err(TableError::LengthMismatch { .. })));
        let err = Table::new(
            "t",
            vec![
                Column::from_i64("a", [Some(1)]),
                Column::from_i64("a", [Some(2)]),
            ],
        );
        assert!(matches!(err, Err(TableError::DuplicateColumn(_))));
    }

    #[test]
    fn get_set_roundtrip_and_bounds() {
        let mut t = sample();
        let cell = CellRef::new(1, 1);
        assert!(t.get(cell).unwrap().is_null());
        t.set(cell, Value::Str("mainz".into())).unwrap();
        assert_eq!(t.get(cell).unwrap(), Value::Str("mainz".into()));
        assert!(t.get(CellRef::new(99, 0)).is_err());
        assert!(t.set(CellRef::new(0, 99), Value::Null).is_err());
        assert_eq!(t.get_at(0, "pop").unwrap(), Value::Float(120.0));
        assert!(t.get_at(0, "zzz").is_err());
    }

    #[test]
    fn push_row_grows_table() {
        let mut t = sample();
        t.push_row(vec![
            Value::Int(4),
            Value::Str("kiel".into()),
            Value::Float(250.0),
        ])
        .unwrap();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.get_at(3, "city").unwrap(), Value::Str("kiel".into()));
        assert!(t.push_row(vec![Value::Int(4)]).is_err());
    }

    #[test]
    fn select_drop_with_column() {
        let t = sample();
        let s = t.select(&["pop", "id"]).unwrap();
        assert_eq!(s.column_names(), vec!["pop", "id"]);
        let d = t.drop_columns(&["city"]).unwrap();
        assert_eq!(d.n_cols(), 2);
        assert!(t.select(&["nope"]).is_err());
        let w = t
            .with_column(Column::from_bool("ok", [Some(true), Some(false), None]))
            .unwrap();
        assert_eq!(w.n_cols(), 4);
        assert!(t
            .with_column(Column::from_bool("short", [Some(true)]))
            .is_err());
    }

    #[test]
    fn take_filter_head() {
        let t = sample();
        let r = t.take(&[2, 0]).unwrap();
        assert_eq!(r.get_at(0, "id").unwrap(), Value::Int(3));
        assert_eq!(r.get_at(1, "id").unwrap(), Value::Int(1));
        assert!(t.take(&[5]).is_err());
        let f = t.filter_rows(|i| i != 1);
        assert_eq!(f.n_rows(), 2);
        assert_eq!(t.head(2).n_rows(), 2);
        assert_eq!(t.head(99).n_rows(), 3);
    }

    #[test]
    fn schema_reflects_columns() {
        let t = sample();
        let s = t.schema();
        assert_eq!(s.names(), vec!["id", "city", "pop"]);
        assert_eq!(s.field_by_name("pop").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn duplicate_rows_detects_repeats() {
        let mut t = sample();
        t.push_row(vec![
            Value::Int(1),
            Value::Str("ulm".into()),
            Value::Float(120.0),
        ])
        .unwrap();
        assert_eq!(t.duplicate_rows(), vec![3]);
    }

    #[test]
    fn drop_duplicates_keeps_first() {
        let mut t = sample();
        t.push_row(vec![
            Value::Int(1),
            Value::Str("ulm".into()),
            Value::Float(120.0),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Int(1),
            Value::Str("ulm".into()),
            Value::Float(120.0),
        ])
        .unwrap();
        let d = t.drop_duplicates();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.get_at(0, "id").unwrap(), Value::Int(1));
        // Idempotent.
        assert_eq!(d.drop_duplicates(), d);
    }

    #[test]
    fn diff_cells_masks_changes() {
        let a = sample();
        let mut b = sample();
        b.set(CellRef::new(0, 2), Value::Float(999.0)).unwrap();
        b.set(CellRef::new(2, 1), Value::Null).unwrap();
        let mut diff = a.diff_cells(&b).unwrap();
        diff.sort();
        assert_eq!(diff, vec![CellRef::new(0, 2), CellRef::new(2, 1)]);
    }

    #[test]
    fn empty_table_has_schema_but_no_rows() {
        let s = Schema::from_pairs([("x", DataType::Int)]).unwrap();
        let t = Table::empty("e", &s);
        assert_eq!(t.shape(), (0, 1));
        assert!(t.is_empty());
    }

    #[test]
    fn display_renders_header_and_rows() {
        let text = sample().to_string();
        assert!(text.contains("id"));
        assert!(text.contains("ulm"));
    }

    #[test]
    fn clone_is_shallow_until_mutated() {
        let t = sample();
        let c = t.clone();
        // O(1) clone: every column still shares its payload allocation.
        for (a, b) in t.columns().iter().zip(c.columns()) {
            assert!(a.shares_data_with(b));
        }
        // Writing one cell detaches only that column.
        let mut m = t.clone();
        m.set(CellRef::new(0, 0), Value::Int(99)).unwrap();
        assert!(!t.columns()[0].shares_data_with(&m.columns()[0]));
        assert!(t.columns()[1].shares_data_with(&m.columns()[1]));
        assert!(t.columns()[2].shares_data_with(&m.columns()[2]));
        assert_eq!(t.get_at(0, "id").unwrap(), Value::Int(1));
        assert_eq!(m.get_at(0, "id").unwrap(), Value::Int(99));
    }

    #[test]
    fn replace_column_by_name() {
        let mut t = sample();
        t.replace_column(Column::from_f64("pop", [Some(1.0), Some(2.0), Some(3.0)]))
            .unwrap();
        assert_eq!(t.get_at(2, "pop").unwrap(), Value::Float(3.0));
        assert!(t
            .replace_column(Column::from_f64("zzz", [Some(1.0), Some(2.0), Some(3.0)]))
            .is_err());
    }
}

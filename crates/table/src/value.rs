//! Cell values and data types.
//!
//! A [`Value`] is the dynamically-typed content of a single table cell. The
//! four concrete types mirror what the paper's pandas substrate exposes to
//! the dashboard: integers, floats, booleans, and strings, plus an explicit
//! null. Parsing from text (CSV ingestion) and printing back out are
//! round-trip safe for every non-null value.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The logical type of a column (or of a single [`Value`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// Boolean (`true`/`false`).
    Bool,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Whether this type participates in numeric statistics.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Human-readable lowercase name, as emitted into DataSheets.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
            DataType::Str => "str",
        }
    }

    /// Parse a type name produced by [`DataType::name`].
    pub fn from_name(name: &str) -> Option<DataType> {
        match name {
            "int" => Some(DataType::Int),
            "float" => Some(DataType::Float),
            "bool" => Some(DataType::Bool),
            "str" => Some(DataType::Str),
            _ => None,
        }
    }

    /// The type that can represent values of both `self` and `other`.
    ///
    /// Int and Float widen to Float; anything else mixed degrades to Str,
    /// matching the permissive coercion pandas applies on ingestion.
    pub fn unify(self, other: DataType) -> DataType {
        if self == other {
            return self;
        }
        match (self, other) {
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => DataType::Float,
            _ => DataType::Str,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing value (empty CSV cell, explicit null, failed coercion).
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    /// `true` when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The concrete type of this value, or `None` for nulls.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Numeric view of the value: ints and floats convert, booleans map to
    /// 0/1, everything else (including numeric-looking strings) is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view; floats truncate only when exactly integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Borrowed string view (only for `Str` values).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view (only for `Bool` values).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse `raw` as the given type. Empty strings and the conventional
    /// null spellings (`na`, `n/a`, `null`, `none`, `nan`, case-insensitive)
    /// parse to `Null` for every type. Returns `None` when `raw` is not a
    /// valid literal of `dtype`.
    pub fn parse_typed(raw: &str, dtype: DataType) -> Option<Value> {
        let trimmed = raw.trim();
        if is_null_token(trimmed) {
            return Some(Value::Null);
        }
        match dtype {
            DataType::Int => trimmed.parse::<i64>().ok().map(Value::Int),
            DataType::Float => parse_float(trimmed).map(Value::Float),
            DataType::Bool => parse_bool(trimmed).map(Value::Bool),
            DataType::Str => Some(Value::Str(trimmed.to_string())),
        }
    }

    /// Infer the narrowest type for a raw token, used by CSV schema
    /// inference. Null tokens return `None` (they are type-neutral).
    pub fn infer_dtype(raw: &str) -> Option<DataType> {
        let trimmed = raw.trim();
        if is_null_token(trimmed) {
            return None;
        }
        if trimmed.parse::<i64>().is_ok() {
            Some(DataType::Int)
        } else if parse_float(trimmed).is_some() {
            Some(DataType::Float)
        } else if parse_bool(trimmed).is_some() {
            Some(DataType::Bool)
        } else {
            Some(DataType::Str)
        }
    }

    /// Render the value the way the CSV writer does. Nulls render as the
    /// empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => render_float(*f),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.clone(),
        }
    }

    /// Coerce this value to `dtype`, returning `Null` when the coercion is
    /// lossy or impossible (mirrors pandas `astype` with `errors="coerce"`).
    pub fn coerce(&self, dtype: DataType) -> Value {
        match (self, dtype) {
            (Value::Null, _) => Value::Null,
            (v, t) if v.dtype() == Some(t) => v.clone(),
            (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 && f.is_finite() => {
                Value::Int(*f as i64)
            }
            (Value::Bool(b), DataType::Int) => Value::Int(i64::from(*b)),
            (Value::Bool(b), DataType::Float) => Value::Float(if *b { 1.0 } else { 0.0 }),
            (v, DataType::Str) => Value::Str(v.render()),
            (Value::Str(s), t) => Value::parse_typed(s, t).unwrap_or(Value::Null),
            _ => Value::Null,
        }
    }

    /// Total order over values used for sorting and quantiles: nulls first,
    /// then by type group (numeric < bool < str), numerics compared by
    /// magnitude with NaN last.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (a, b) => {
                    let fa = a.as_f64().unwrap_or(f64::NAN);
                    let fb = b.as_f64().unwrap_or(f64::NAN);
                    fa.total_cmp(&fb)
                }
            },
            ord => ord,
        }
    }
}

impl PartialEq for Value {
    /// Equality treats `Int(2) == Float(2.0)` as equal (numeric identity)
    /// and `Null == Null` as equal, which is what cell-level error masks
    /// need when comparing dirty vs. clean tables.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *b == *a as f64,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Ints and whole floats must hash identically because they
            // compare equal.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                let canonical = if f.is_nan() { f64::NAN } else { *f };
                canonical.to_bits().hash(state);
            }
            Value::Bool(b) => {
                2u8.hash(state);
                b.hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("∅"),
            other => f.write_str(&other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// Whether a raw token spells a null.
pub fn is_null_token(trimmed: &str) -> bool {
    trimmed.is_empty()
        || matches!(
            trimmed.to_ascii_lowercase().as_str(),
            "na" | "n/a" | "null" | "none" | "nan"
        )
}

fn parse_bool(s: &str) -> Option<bool> {
    // Only the canonical spellings: looser forms ("t", "yes") would turn
    // legitimate string data into booleans during schema inference.
    match s.to_ascii_lowercase().as_str() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn parse_float(s: &str) -> Option<f64> {
    // Reject inf/NaN spellings: they are almost always data errors in CSV
    // sources and pandas treats them as strings unless told otherwise.
    let lower = s.to_ascii_lowercase();
    if lower.contains("inf") || lower.contains("nan") {
        return None;
    }
    s.parse::<f64>().ok()
}

fn render_float(f: f64) -> String {
    if f.is_nan() {
        return "NaN".to_string();
    }
    if f == f.trunc() && f.is_finite() && f.abs() < 1e15 {
        // Keep a trailing ".0" so the value re-parses as Float, not Int.
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_unification_widens_numerics() {
        assert_eq!(DataType::Int.unify(DataType::Float), DataType::Float);
        assert_eq!(DataType::Float.unify(DataType::Int), DataType::Float);
        assert_eq!(DataType::Int.unify(DataType::Int), DataType::Int);
        assert_eq!(DataType::Int.unify(DataType::Str), DataType::Str);
        assert_eq!(DataType::Bool.unify(DataType::Float), DataType::Str);
    }

    #[test]
    fn parse_typed_honours_null_tokens() {
        for raw in ["", "  ", "NA", "n/a", "NULL", "None", "nan"] {
            assert_eq!(
                Value::parse_typed(raw, DataType::Int),
                Some(Value::Null),
                "raw={raw:?}"
            );
        }
    }

    #[test]
    fn parse_typed_int_float_bool() {
        assert_eq!(
            Value::parse_typed("42", DataType::Int),
            Some(Value::Int(42))
        );
        assert_eq!(
            Value::parse_typed("-7", DataType::Int),
            Some(Value::Int(-7))
        );
        assert_eq!(Value::parse_typed("4.5", DataType::Int), None);
        assert_eq!(
            Value::parse_typed("4.5", DataType::Float),
            Some(Value::Float(4.5))
        );
        assert_eq!(
            Value::parse_typed("1e3", DataType::Float),
            Some(Value::Float(1000.0))
        );
        assert_eq!(
            Value::parse_typed("True", DataType::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(
            Value::parse_typed("FALSE", DataType::Bool),
            Some(Value::Bool(false))
        );
        assert_eq!(Value::parse_typed("yes", DataType::Bool), None);
        assert_eq!(Value::parse_typed("maybe", DataType::Bool), None);
    }

    #[test]
    fn parse_float_rejects_inf_and_nan_spellings() {
        assert_eq!(Value::parse_typed("inf", DataType::Float), None);
        assert_eq!(Value::parse_typed("-Infinity", DataType::Float), None);
        assert_eq!(Value::infer_dtype("inf"), Some(DataType::Str));
    }

    #[test]
    fn infer_dtype_narrowest_first() {
        assert_eq!(Value::infer_dtype("12"), Some(DataType::Int));
        assert_eq!(Value::infer_dtype("12.5"), Some(DataType::Float));
        assert_eq!(Value::infer_dtype("true"), Some(DataType::Bool));
        assert_eq!(Value::infer_dtype("hello"), Some(DataType::Str));
        assert_eq!(Value::infer_dtype(""), None);
        assert_eq!(Value::infer_dtype("NA"), None);
    }

    #[test]
    fn render_round_trips() {
        let vals = [
            Value::Int(-3),
            Value::Float(2.5),
            Value::Float(10.0),
            Value::Bool(true),
            Value::Str("abc".into()),
        ];
        for v in vals {
            let dtype = v.dtype().unwrap();
            let back = Value::parse_typed(&v.render(), dtype).unwrap();
            assert_eq!(back, v, "render {v:?}");
        }
    }

    #[test]
    fn whole_float_renders_with_decimal_point() {
        assert_eq!(Value::Float(10.0).render(), "10.0");
        assert_eq!(Value::infer_dtype("10.0"), Some(DataType::Float));
    }

    #[test]
    fn numeric_equality_across_int_and_float() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn hash_consistent_with_numeric_equality() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(2));
        assert!(set.contains(&Value::Float(2.0)));
    }

    #[test]
    fn coerce_between_types() {
        assert_eq!(Value::Int(3).coerce(DataType::Float), Value::Float(3.0));
        assert_eq!(Value::Float(3.0).coerce(DataType::Int), Value::Int(3));
        assert_eq!(Value::Float(3.5).coerce(DataType::Int), Value::Null);
        assert_eq!(Value::Str("7".into()).coerce(DataType::Int), Value::Int(7));
        assert_eq!(Value::Str("x".into()).coerce(DataType::Int), Value::Null);
        assert_eq!(Value::Int(7).coerce(DataType::Str), Value::Str("7".into()));
    }

    #[test]
    fn total_cmp_orders_nulls_first() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Int(5),
            Value::Null,
            Value::Float(1.5),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Float(1.5));
        assert_eq!(vals[2], Value::Int(5));
    }

    #[test]
    fn as_f64_and_as_i64_views() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("4".into()).as_f64(), None);
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
    }
}

//! # datalens-table
//!
//! Columnar tabular substrate for the DataLens reproduction — the stand-in
//! for the pandas `DataFrame` the original dashboard is built on.
//!
//! Provides:
//! - [`Value`]/[`DataType`]: dynamically-typed cell values with pandas-style
//!   null semantics and coercion rules,
//! - [`Column`]: type-specialised storage over immutable, `Arc`-shared
//!   row-group [`Chunk`]s (dictionary-encoded for strings) with a dynamic
//!   view — cloning is O(chunks) and edits copy one chunk, not the column,
//! - [`Table`]: schema-validated collection of columns with cell addressing
//!   ([`CellRef`]) used by every detector and repairer in the workspace,
//! - streaming CSV reading/writing with schema inference ([`csv`]),
//! - the on-disk dataset folder layout ([`dataset_dir`]).
//!
//! ```
//! use datalens_table::{csv::{read_csv_str, CsvOptions}, Value};
//!
//! let t = read_csv_str("demo", "city,pop\nulm,126\nbonn,330\n", &CsvOptions::default()).unwrap();
//! assert_eq!(t.shape(), (2, 2));
//! assert_eq!(t.get_at(1, "pop").unwrap(), Value::Int(330));
//! ```

pub mod chunk;
pub mod column;
pub mod csv;
pub mod dataset_dir;
pub mod error;
pub mod schema;
pub mod table;
pub mod value;

pub use chunk::{Chunk, ChunkBuilder, ChunkValues, DEFAULT_CHUNK_ROWS};
pub use column::Column;
pub use dataset_dir::DatasetDir;
pub use error::TableError;
pub use schema::{Field, Schema};
pub use table::{CellRef, Table};
pub use value::{DataType, Value};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::csv::{read_csv_str, write_csv_str, CsvOptions};
    use crate::{Column, Table, Value};

    fn table_strategy() -> impl Strategy<Value = Table> {
        table_strategy_of("[ -~]{0,12}")
    }

    fn table_strategy_of(cell_regex: &str) -> impl Strategy<Value = Table> {
        let cells = proptest::string::string_regex(cell_regex).unwrap();
        (1usize..5, 1usize..20).prop_flat_map(move |(cols, rows)| {
            proptest::collection::vec(
                proptest::collection::vec(proptest::option::of(cells.clone()), rows),
                cols,
            )
            .prop_map(move |data| {
                let columns: Vec<Column> = data
                    .into_iter()
                    .enumerate()
                    .map(|(i, vals)| {
                        // Null-token spellings would not round-trip as
                        // strings (they re-parse to null), so normalise them
                        // to null up front. Leading/trailing spaces are
                        // trimmed by the typed parser, so trim here too.
                        let vals = vals.into_iter().map(|v| {
                            v.map(|s| s.trim().to_string())
                                .filter(|s| !crate::value::is_null_token(s))
                        });
                        Column::from_str_vals(format!("c{i}"), vals)
                    })
                    .collect();
                Table::new("prop", columns).unwrap()
            })
        })
    }

    proptest! {
        /// One write→read normalises types (e.g. the string "01" becomes
        /// Int(1)); after that, write→read is a fixed point: no content or
        /// shape drifts on repeated round trips, however gnarly the quoting.
        #[test]
        fn csv_round_trip_strings_fixed_point(t in table_strategy()) {
            let once = read_csv_str("prop", &write_csv_str(&t), &CsvOptions::default()).unwrap();
            prop_assert_eq!(t.shape(), once.shape());
            let twice = read_csv_str("prop", &write_csv_str(&once), &CsvOptions::default()).unwrap();
            prop_assert_eq!(&once, &twice);
        }

        /// CSV write→read is exactly identity for numeric tables.
        #[test]
        fn csv_round_trip_numeric(
            ints in proptest::collection::vec(proptest::option::of(any::<i32>()), 1..30),
            floats in proptest::collection::vec(proptest::option::of(-1e6f64..1e6), 1..30),
        ) {
            let n = ints.len().min(floats.len());
            // An all-null column cannot carry its dtype through CSV, so pin
            // one concrete value per column.
            let mut ints: Vec<Option<i64>> = ints[..n].iter().map(|v| v.map(i64::from)).collect();
            let mut floats = floats[..n].to_vec();
            ints[0] = Some(ints[0].unwrap_or(0));
            floats[0] = Some(floats[0].unwrap_or(0.5));
            let t = Table::new(
                "nums",
                vec![
                    Column::from_i64("i", ints),
                    Column::from_f64("f", floats),
                ],
            ).unwrap();
            let back = read_csv_str("nums", &write_csv_str(&t), &CsvOptions::default()).unwrap();
            prop_assert_eq!(t.schema(), back.schema());
            for cell in t.cell_refs() {
                prop_assert_eq!(t.get(cell).unwrap(), back.get(cell).unwrap());
            }
        }

        /// take() preserves values at the selected indices.
        #[test]
        fn take_preserves_values(
            vals in proptest::collection::vec(proptest::option::of(any::<i64>()), 1..40),
            seed in any::<u64>(),
        ) {
            let t = Table::new("t", vec![Column::from_i64("x", vals.clone())]).unwrap();
            let idx: Vec<usize> = (0..vals.len()).filter(|i| !(i + seed as usize).is_multiple_of(3)).collect();
            let taken = t.take(&idx).unwrap();
            for (new_r, &old_r) in idx.iter().enumerate() {
                prop_assert_eq!(
                    taken.get_at(new_r, "x").unwrap(),
                    Value::from(vals[old_r])
                );
            }
        }

        /// Cells spanning physical lines (embedded LF / bare CR) survive
        /// the write→read cycle: one pass normalises types, after which
        /// the round trip is a fixed point.
        #[test]
        fn csv_round_trip_multiline_quoted(t in table_strategy_of("[ -~\r\n]{0,12}")) {
            let once = read_csv_str("prop", &write_csv_str(&t), &CsvOptions::default()).unwrap();
            prop_assert_eq!(t.shape(), once.shape());
            let twice = read_csv_str("prop", &write_csv_str(&once), &CsvOptions::default()).unwrap();
            prop_assert_eq!(&once, &twice);
        }

        /// The same logical content parses identically whether records
        /// end in LF, CRLF, or classic-Mac bare CR.
        #[test]
        fn csv_line_ending_equivalence(t in table_strategy()) {
            // Cells from this strategy never contain newlines, so every
            // '\n' the writer emits is a record terminator and can be
            // rewritten wholesale.
            let lf = write_csv_str(&t);
            let base = read_csv_str("prop", &lf, &CsvOptions::default()).unwrap();
            let crlf = read_csv_str("prop", &lf.replace('\n', "\r\n"), &CsvOptions::default()).unwrap();
            let cr = read_csv_str("prop", &lf.replace('\n', "\r"), &CsvOptions::default()).unwrap();
            prop_assert_eq!(&base, &crlf);
            prop_assert_eq!(&base, &cr);
        }

        /// diff_cells is empty iff tables are equal, and symmetric.
        #[test]
        fn diff_cells_symmetry(
            a in proptest::collection::vec(proptest::option::of(any::<i64>()), 1..25),
            b in proptest::collection::vec(proptest::option::of(any::<i64>()), 1..25),
        ) {
            let n = a.len().min(b.len());
            let ta = Table::new("a", vec![Column::from_i64("x", a[..n].iter().copied())]).unwrap();
            let tb = Table::new("b", vec![Column::from_i64("x", b[..n].iter().copied())]).unwrap();
            let d1 = ta.diff_cells(&tb).unwrap();
            let d2 = tb.diff_cells(&ta).unwrap();
            prop_assert_eq!(&d1, &d2);
            prop_assert_eq!(d1.is_empty(), a[..n] == b[..n]);
        }
    }
}

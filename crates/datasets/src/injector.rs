//! The error injector: corrupts a clean table cell-by-cell while recording
//! exact ground truth.
//!
//! Rates are per error type, applied over eligible cells (numeric-only
//! error types skip string columns and vice versa). Injection is
//! deterministic per seed so every benchmark run is reproducible.

use std::collections::BTreeMap;

use rand::prelude::*;
use rand::rngs::StdRng;

use datalens_table::{CellRef, DataType, Table, Value};

use crate::ground_truth::{DirtyDataset, ErrorType};

/// Per-type injection rates (fraction of eligible cells corrupted).
#[derive(Debug, Clone)]
pub struct InjectionConfig {
    pub missing_rate: f64,
    pub disguised_rate: f64,
    pub outlier_rate: f64,
    pub typo_rate: f64,
    pub swap_rate: f64,
    /// Rate of FD violations, applied to the configured dependent columns.
    pub fd_violation_rate: f64,
    /// `(determinant column, dependent column)` pairs whose dependency the
    /// injector may break.
    pub fd_pairs: Vec<(String, String)>,
    /// Columns never corrupted (e.g. the downstream ML target).
    pub protected: Vec<String>,
    /// Numeric sentinels used for disguised missing values.
    pub sentinels: Vec<i64>,
    pub seed: u64,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        InjectionConfig {
            missing_rate: 0.02,
            disguised_rate: 0.02,
            outlier_rate: 0.02,
            typo_rate: 0.02,
            swap_rate: 0.02,
            fd_violation_rate: 0.02,
            fd_pairs: Vec::new(),
            protected: Vec::new(),
            sentinels: vec![-1, 0, 99999],
            seed: 0,
        }
    }
}

impl InjectionConfig {
    /// A configuration with every rate set to `rate`.
    pub fn uniform(rate: f64, seed: u64) -> InjectionConfig {
        InjectionConfig {
            missing_rate: rate,
            disguised_rate: rate,
            outlier_rate: rate,
            typo_rate: rate,
            swap_rate: rate,
            fd_violation_rate: rate,
            seed,
            ..InjectionConfig::default()
        }
    }
}

/// Corrupt `clean` per `config`, returning the dirty table and ground truth.
pub fn inject(clean: &Table, config: &InjectionConfig) -> DirtyDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dirty = clean.clone();
    let mut errors: BTreeMap<CellRef, ErrorType> = BTreeMap::new();

    let protected: Vec<usize> = config
        .protected
        .iter()
        .filter_map(|n| clean.column_index(n))
        .collect();

    // Column metadata gathered once.
    let col_stats: Vec<ColumnInfo> = clean.columns().iter().map(ColumnInfo::gather).collect();

    for cell in clean.cell_refs().collect::<Vec<_>>() {
        if protected.contains(&cell.col) {
            continue;
        }
        // `cell_refs()` only yields in-range cells, but a typed miss is
        // still just a skipped cell, never a panic on the serving path.
        let Ok(current) = clean.get(cell) else {
            continue;
        };
        if errors.contains_key(&cell) || current.is_null() {
            continue;
        }
        let info = &col_stats[cell.col];
        let Some(dtype) = clean.column(cell.col).map(|c| c.dtype()) else {
            continue;
        };

        // One corruption at most per cell; try types in a fixed order with
        // independent coin flips.
        let corruption = pick_corruption(&mut rng, config, dtype, info);
        let Some(kind) = corruption else { continue };
        let new_value = match kind {
            ErrorType::MissingValue => Value::Null,
            ErrorType::DisguisedMissing => match dtype {
                DataType::Str => Value::Str(
                    ["?", "unknown", "-", "missing"]
                        .choose(&mut rng)
                        .copied()
                        .unwrap_or("missing")
                        .to_string(),
                ),
                _ => {
                    let Some(&s) = config.sentinels.choose(&mut rng) else {
                        continue; // no sentinels configured
                    };
                    match dtype {
                        DataType::Float => Value::Float(s as f64),
                        _ => Value::Int(s),
                    }
                }
            },
            ErrorType::Outlier => {
                let Some(v) = current.as_f64() else { continue };
                let spread = info.std.max(info.mean.abs() * 0.1).max(1.0);
                let direction = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
                let shifted = v + direction * spread * rng.random_range(5.0..12.0);
                match dtype {
                    DataType::Int => Value::Int(shifted.round() as i64),
                    _ => Value::Float(shifted),
                }
            }
            ErrorType::Typo => {
                let Some(s) = current.as_str() else { continue };
                Value::Str(apply_typo(s, &mut rng))
            }
            ErrorType::CategorySwap | ErrorType::FdViolation => {
                let rendered = current.render();
                let alternatives: Vec<&String> =
                    info.categories.iter().filter(|c| **c != rendered).collect();
                match alternatives.choose(&mut rng) {
                    Some(alt) => Value::Str((*alt).clone()),
                    None => continue,
                }
            }
        };
        // A sentinel or rounded outlier can coincide with the genuine
        // value; recording that as an error would corrupt the ground truth.
        if new_value == current {
            continue;
        }
        if dirty.set(cell, new_value).is_ok() {
            errors.insert(cell, kind);
        }
    }

    // FD violations on the configured dependent columns (overrides any
    // earlier corruption on the chosen cells for labelling clarity).
    for (det, dep) in &config.fd_pairs {
        let (Some(_det_idx), Some(dep_idx)) = (clean.column_index(det), clean.column_index(dep))
        else {
            continue;
        };
        if protected.contains(&dep_idx) {
            continue;
        }
        let info = &col_stats[dep_idx];
        for row in 0..clean.n_rows() {
            if !rng.random_bool(config.fd_violation_rate.clamp(0.0, 1.0)) {
                continue;
            }
            let cell = CellRef::new(row, dep_idx);
            if errors.contains_key(&cell) {
                continue;
            }
            let Ok(current) = clean.get(cell) else {
                continue;
            };
            let rendered = current.render();
            let alternatives: Vec<&String> =
                info.categories.iter().filter(|c| **c != rendered).collect();
            if let Some(alt) = alternatives.choose(&mut rng) {
                if dirty.set(cell, Value::Str((*alt).clone())).is_ok() {
                    errors.insert(cell, ErrorType::FdViolation);
                }
            }
        }
    }

    DirtyDataset {
        clean: clean.clone(),
        dirty,
        errors,
    }
}

/// Per-column info the corruption kinds need.
struct ColumnInfo {
    mean: f64,
    std: f64,
    categories: Vec<String>,
}

impl ColumnInfo {
    fn gather(col: &datalens_table::Column) -> ColumnInfo {
        let vals = col.numeric_values();
        let (mean, std) = if vals.is_empty() {
            (0.0, 0.0)
        } else {
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / vals.len() as f64;
            (m, v.sqrt())
        };
        let categories: Vec<String> = col
            .value_counts()
            .into_iter()
            .map(|(v, _)| v.render())
            .collect();
        ColumnInfo {
            mean,
            std,
            categories,
        }
    }
}

fn pick_corruption(
    rng: &mut StdRng,
    config: &InjectionConfig,
    dtype: DataType,
    info: &ColumnInfo,
) -> Option<ErrorType> {
    let numeric = dtype.is_numeric();
    let stringy = dtype == DataType::Str;
    let candidates: [(ErrorType, f64, bool); 5] = [
        (ErrorType::MissingValue, config.missing_rate, true),
        (ErrorType::DisguisedMissing, config.disguised_rate, true),
        (ErrorType::Outlier, config.outlier_rate, numeric),
        (ErrorType::Typo, config.typo_rate, stringy),
        (
            ErrorType::CategorySwap,
            config.swap_rate,
            stringy && info.categories.len() >= 2 && info.categories.len() <= 50,
        ),
    ];
    for (kind, rate, eligible) in candidates {
        if eligible && rate > 0.0 && rng.random_bool(rate.clamp(0.0, 1.0)) {
            return Some(kind);
        }
    }
    None
}

/// Mutate one character of `s` (replace, delete, duplicate, or transpose).
fn apply_typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let pos = rng.random_range(0..chars.len());
    let mut out = chars.clone();
    match rng.random_range(0..4u8) {
        0 => {
            // Replace with a neighbouring letter.
            let c = out[pos];
            out[pos] = char::from_u32((c as u32).wrapping_add(1)).unwrap_or('x');
        }
        1 => {
            out.remove(pos);
            if out.is_empty() {
                out.push('x');
            }
        }
        2 => out.insert(pos, out[pos]),
        _ => {
            if chars.len() >= 2 {
                let p = pos.min(chars.len() - 2);
                out.swap(p, p + 1);
            } else {
                out.push('x');
            }
        }
    }
    let result: String = out.into_iter().collect();
    if result == s {
        format!("{s}x")
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn clean_table(rows: usize) -> Table {
        Table::new(
            "clean",
            vec![
                Column::from_f64("num", (0..rows).map(|i| Some(i as f64)).collect::<Vec<_>>()),
                Column::from_str_vals(
                    "cat",
                    (0..rows)
                        .map(|i| Some(["alpha", "beta", "gamma"][i % 3]))
                        .collect::<Vec<_>>(),
                ),
                Column::from_f64(
                    "target",
                    (0..rows).map(|i| Some(i as f64 * 2.0)).collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn injection_is_deterministic() {
        let clean = clean_table(200);
        let cfg = InjectionConfig::uniform(0.05, 42);
        let a = inject(&clean, &cfg);
        let b = inject(&clean, &cfg);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.dirty, b.dirty);
    }

    #[test]
    fn every_recorded_error_actually_differs() {
        let clean = clean_table(300);
        let d = inject(&clean, &InjectionConfig::uniform(0.05, 7));
        assert!(!d.errors.is_empty());
        for &cell in d.errors.keys() {
            assert_ne!(
                d.clean.get(cell).unwrap(),
                d.dirty.get(cell).unwrap(),
                "cell {cell} recorded but unchanged"
            );
        }
    }

    #[test]
    fn unrecorded_cells_are_untouched() {
        let clean = clean_table(300);
        let d = inject(&clean, &InjectionConfig::uniform(0.05, 7));
        let diff = d.clean.diff_cells(&d.dirty).unwrap();
        assert_eq!(diff.len(), d.errors.len());
        for cell in diff {
            assert!(d.errors.contains_key(&cell));
        }
    }

    #[test]
    fn protected_columns_stay_clean() {
        let clean = clean_table(300);
        let cfg = InjectionConfig {
            protected: vec!["target".into()],
            ..InjectionConfig::uniform(0.2, 3)
        };
        let d = inject(&clean, &cfg);
        let target_idx = clean.column_index("target").unwrap();
        assert!(d.errors.keys().all(|c| c.col != target_idx));
    }

    #[test]
    fn rates_scale_error_volume() {
        let clean = clean_table(500);
        let low = inject(&clean, &InjectionConfig::uniform(0.01, 9));
        let high = inject(&clean, &InjectionConfig::uniform(0.15, 9));
        assert!(high.errors.len() > low.errors.len() * 3);
    }

    #[test]
    fn zero_rates_yield_identical_table() {
        let clean = clean_table(100);
        let d = inject(&clean, &InjectionConfig::uniform(0.0, 1));
        assert!(d.errors.is_empty());
        assert_eq!(d.clean, d.dirty);
    }

    #[test]
    fn outliers_are_far_from_distribution() {
        let clean = clean_table(500);
        let cfg = InjectionConfig {
            outlier_rate: 0.1,
            missing_rate: 0.0,
            disguised_rate: 0.0,
            typo_rate: 0.0,
            swap_rate: 0.0,
            fd_violation_rate: 0.0,
            ..InjectionConfig::default()
        };
        let d = inject(&clean, &cfg);
        assert!(d.count_of(ErrorType::Outlier) > 10);
        for (&cell, &kind) in &d.errors {
            if kind == ErrorType::Outlier {
                let clean_v = d.clean.get(cell).unwrap().as_f64().unwrap();
                let dirty_v = d.dirty.get(cell).unwrap().as_f64().unwrap();
                assert!((dirty_v - clean_v).abs() > 100.0, "weak outlier at {cell}");
            }
        }
    }

    #[test]
    fn typos_only_hit_string_columns() {
        let clean = clean_table(300);
        let cfg = InjectionConfig {
            typo_rate: 0.2,
            missing_rate: 0.0,
            disguised_rate: 0.0,
            outlier_rate: 0.0,
            swap_rate: 0.0,
            fd_violation_rate: 0.0,
            ..InjectionConfig::default()
        };
        let d = inject(&clean, &cfg);
        let cat_idx = clean.column_index("cat").unwrap();
        assert!(d.errors.keys().all(|c| c.col == cat_idx));
        assert!(d.count_of(ErrorType::Typo) > 0);
    }

    #[test]
    fn apply_typo_always_changes() {
        let mut rng = StdRng::seed_from_u64(5);
        for s in ["a", "ab", "hello", "x"] {
            for _ in 0..20 {
                assert_ne!(apply_typo(s, &mut rng), s);
            }
        }
    }
}

//! Preloaded datasets.
//!
//! The paper: "using one of the preloaded datasets that come with the
//! dashboard, allowing users to explore its functionalities without
//! needing their data." The registry maps names to ready-made dirty
//! datasets (clean table + injected errors + ground truth) with the same
//! defaults the benchmark harness uses, so examples, tests, and benches
//! all see identical data.

use datalens_table::Table;

use crate::beers::{self, BeersConfig};
use crate::ground_truth::DirtyDataset;
use crate::hospital::{self, HospitalConfig};
use crate::injector::{inject, InjectionConfig};
use crate::nasa::{self, NasaConfig};

/// Description of one preloaded dataset.
#[derive(Debug, Clone)]
pub struct PreloadedDataset {
    pub name: &'static str,
    /// The downstream ML target column.
    pub target: &'static str,
    /// Whether the downstream task is regression or classification.
    pub task: Task,
    pub description: &'static str,
}

/// Downstream ML task type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Task {
    Regression,
    Classification,
}

/// Names and metadata of all preloaded datasets.
pub fn catalog() -> Vec<PreloadedDataset> {
    vec![
        PreloadedDataset {
            name: "nasa",
            target: nasa::TARGET,
            task: Task::Regression,
            description: "Synthetic NASA airfoil-style numeric telemetry; \
                          regression on sound pressure level",
        },
        PreloadedDataset {
            name: "beers",
            target: beers::TARGET,
            task: Task::Classification,
            description: "Synthetic craft-beers catalogue with brewery→city \
                          FDs; multi-class style classification",
        },
        PreloadedDataset {
            name: "hospital",
            target: hospital::TARGET,
            task: Task::Classification,
            description: "Synthetic hospital quality measures; FD-dense \
                          categorical data in the style of the classic \
                          cleaning benchmark; condition classification",
        },
    ]
}

/// Generate the *clean* table for a preloaded dataset.
pub fn clean(name: &str, seed: u64) -> Option<Table> {
    match name {
        "nasa" => Some(nasa::generate(&NasaConfig {
            seed,
            ..NasaConfig::default()
        })),
        "beers" => Some(beers::generate(&BeersConfig {
            seed,
            ..BeersConfig::default()
        })),
        "hospital" => Some(hospital::generate(&HospitalConfig {
            seed,
            ..HospitalConfig::default()
        })),
        _ => None,
    }
}

/// Generate the standard *dirty* version of a preloaded dataset: clean
/// table plus the default error mix with the target column protected.
pub fn dirty(name: &str, seed: u64) -> Option<DirtyDataset> {
    let meta = catalog().into_iter().find(|d| d.name == name)?;
    let clean_table = clean(name, seed)?;
    // Rates are tuned so that a *minority* of rows carry an error (each
    // error type rolls its own coin per cell, so the effective cell rate
    // is ~3× the per-type rate). This matters for Figure 3: RAHA's
    // tuple-selection must regularly surface clean tuples, which is what
    // makes reviewed-tuples exceed the labeling budget.
    let mut cfg = InjectionConfig::uniform(0.01, seed.wrapping_add(1));
    cfg.fd_violation_rate = 0.02;
    cfg.protected = vec![meta.target.to_string()];
    if name == "beers" {
        cfg.fd_pairs = vec![
            ("brewery".to_string(), "city".to_string()),
            ("brewery".to_string(), "state".to_string()),
        ];
    }
    if name == "hospital" {
        cfg.fd_pairs = vec![
            ("hospital_name".to_string(), "city".to_string()),
            ("hospital_name".to_string(), "phone".to_string()),
            ("measure_code".to_string(), "measure_name".to_string()),
        ];
    }
    Some(inject(&clean_table, &cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lists_both_paper_datasets() {
        let names: Vec<&str> = catalog().iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["nasa", "beers", "hospital"]);
    }

    #[test]
    fn clean_and_dirty_resolve() {
        for d in catalog() {
            let c = clean(d.name, 0).unwrap();
            assert!(c.n_rows() > 100);
            let dd = dirty(d.name, 0).unwrap();
            assert!(!dd.errors.is_empty());
            assert_eq!(dd.clean.shape(), dd.dirty.shape());
        }
        assert!(clean("nope", 0).is_none());
        assert!(dirty("nope", 0).is_none());
    }

    #[test]
    fn target_column_is_never_corrupted() {
        for d in catalog() {
            let dd = dirty(d.name, 3).unwrap();
            let target_idx = dd.clean.column_index(d.target).unwrap();
            assert!(
                dd.errors.keys().all(|c| c.col != target_idx),
                "{} target corrupted",
                d.name
            );
        }
    }

    #[test]
    fn beers_dirty_contains_fd_violations() {
        let dd = dirty("beers", 0).unwrap();
        assert!(dd.count_of(crate::ground_truth::ErrorType::FdViolation) > 0);
    }
}

//! NASA-like dataset generator.
//!
//! The paper's regression experiments (Figures 3a, 4, 5a) use a "NASA"
//! dataset with numeric attributes and a continuous target — the NASA
//! airfoil self-noise benchmark. We cannot ship the original, so this
//! module generates a synthetic equivalent: five physically-themed numeric
//! features and a continuous `sound_pressure` target computed from a
//! nonlinear response surface plus noise. A decision tree fits it well but
//! not perfectly, which is exactly the regime Figure 5a needs (clean data
//! → low MSE, corrupted data → visibly higher MSE).

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};

use datalens_table::{Column, Table};

/// Options for [`generate`].
#[derive(Debug, Clone)]
pub struct NasaConfig {
    pub rows: usize,
    /// Standard deviation of the additive target noise (dB).
    pub noise_std: f64,
    pub seed: u64,
}

impl Default for NasaConfig {
    fn default() -> Self {
        NasaConfig {
            rows: 1200,
            noise_std: 1.5,
            seed: 0,
        }
    }
}

/// The target column name.
pub const TARGET: &str = "sound_pressure";

/// Generate the clean NASA-like table. Columns:
/// `frequency`, `angle_of_attack`, `chord_length`, `velocity`,
/// `displacement_thickness`, and the target `sound_pressure`.
pub fn generate(config: &NasaConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let noise = Normal::new(0.0, config.noise_std.max(1e-9)).expect("valid std");

    let chord_options: [f64; 6] = [0.0254, 0.0508, 0.1016, 0.1524, 0.2286, 0.3048];
    let velocity_options: [f64; 4] = [31.7, 39.6, 55.5, 71.3];

    let mut frequency = Vec::with_capacity(config.rows);
    let mut angle = Vec::with_capacity(config.rows);
    let mut chord = Vec::with_capacity(config.rows);
    let mut velocity = Vec::with_capacity(config.rows);
    let mut thickness = Vec::with_capacity(config.rows);
    let mut target = Vec::with_capacity(config.rows);

    for _ in 0..config.rows {
        // Log-uniform frequency 200 Hz .. 20 kHz.
        let f = (rng.random_range(200f64.ln()..20_000f64.ln())).exp();
        let a: f64 = rng.random_range(0.0..22.0);
        let c = *chord_options.choose(&mut rng).expect("nonempty");
        let v = *velocity_options.choose(&mut rng).expect("nonempty");
        // Suction-side displacement thickness grows with angle, shrinks
        // with velocity (loosely physical).
        let t = 0.001 * (1.0 + a / 5.0).powf(1.5) * (71.3 / v).sqrt() * rng.random_range(0.8..1.2);

        // Response surface: base level minus frequency & thickness
        // penalties plus velocity gain — roughly the shape of the real
        // airfoil SPL response, values landing in ~[100, 140] dB.
        let spl = 132.0 - 7.5 * ((f / 1000.0).ln()).powi(2) / 4.0 - 1.2 * a + 9.0 * (v / 71.3).ln()
            - 800.0 * t
            + 14.0 * (c / 0.3048)
            + noise.sample(&mut rng);

        frequency.push(Some(f.round()));
        angle.push(Some((a * 10.0).round() / 10.0));
        chord.push(Some(c));
        velocity.push(Some(v));
        thickness.push(Some((t * 1e6).round() / 1e6));
        target.push(Some((spl * 100.0).round() / 100.0));
    }

    Table::new(
        "nasa",
        vec![
            Column::from_f64("frequency", frequency),
            Column::from_f64("angle_of_attack", angle),
            Column::from_f64("chord_length", chord),
            Column::from_f64("velocity", velocity),
            Column::from_f64("displacement_thickness", thickness),
            Column::from_f64(TARGET, target),
        ],
    )
    .expect("schema is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_schema() {
        let t = generate(&NasaConfig::default());
        assert_eq!(t.shape(), (1200, 6));
        assert_eq!(t.column_names().last().copied(), Some(TARGET));
        assert_eq!(t.null_count(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&NasaConfig::default());
        let b = generate(&NasaConfig::default());
        assert_eq!(a, b);
        let c = generate(&NasaConfig {
            seed: 1,
            ..NasaConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn target_in_plausible_decibel_range() {
        let t = generate(&NasaConfig::default());
        let vals = t.column_by_name(TARGET).unwrap().numeric_values();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean > 90.0 && mean < 150.0, "mean SPL {mean}");
        assert!(vals.iter().all(|&v| v > 60.0 && v < 180.0));
    }

    #[test]
    fn features_vary() {
        let t = generate(&NasaConfig {
            rows: 300,
            ..NasaConfig::default()
        });
        for name in ["frequency", "angle_of_attack", "velocity"] {
            let col = t.column_by_name(name).unwrap();
            let distinct = col.value_counts().len();
            assert!(distinct > 3, "{name} has only {distinct} values");
        }
    }

    #[test]
    fn target_depends_on_features() {
        // A tree fitted on the features must beat the mean baseline by a
        // wide margin — i.e. the target is actually learnable.
        let t = generate(&NasaConfig {
            rows: 600,
            ..NasaConfig::default()
        });
        let y = t.column_by_name(TARGET).unwrap().numeric_values();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        assert!(var > 10.0, "target variance too small: {var}");
    }
}

//! Beers-like dataset generator.
//!
//! The paper's second evaluation dataset is the craft-beers dataset
//! (Figures 3b, 5b): mixed numeric/categorical attributes, a multi-class
//! target (`style`), and natural functional dependencies
//! (`brewery → city`, `brewery → state`). This synthetic equivalent
//! preserves all three properties: style determines the abv/ibu/ounces
//! distributions (so the classification task is learnable), breweries have
//! fixed locations (so FD mining and NADEEF have real rules to find), and
//! beer names are high-cardinality strings (so typo injection has targets).

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};

use datalens_table::{Column, Table};

/// Options for [`generate`].
#[derive(Debug, Clone)]
pub struct BeersConfig {
    pub rows: usize,
    pub n_breweries: usize,
    pub seed: u64,
}

impl Default for BeersConfig {
    fn default() -> Self {
        BeersConfig {
            rows: 1000,
            n_breweries: 25,
            seed: 0,
        }
    }
}

/// The classification target column.
pub const TARGET: &str = "style";

/// `(style, mean abv %, mean ibu, weight)` for the style mixture.
const STYLES: [(&str, f64, f64, f64); 6] = [
    ("American IPA", 6.8, 65.0, 0.28),
    ("American Pale Ale", 5.5, 40.0, 0.22),
    ("American Lager", 4.6, 18.0, 0.18),
    ("Imperial Stout", 9.5, 55.0, 0.10),
    ("Hefeweizen", 5.2, 14.0, 0.12),
    ("Fruit Sour", 4.2, 8.0, 0.10),
];

const CITIES: [(&str, &str); 12] = [
    ("Portland", "OR"),
    ("San Diego", "CA"),
    ("Denver", "CO"),
    ("Austin", "TX"),
    ("Chicago", "IL"),
    ("Seattle", "WA"),
    ("Asheville", "NC"),
    ("Grand Rapids", "MI"),
    ("Boston", "MA"),
    ("Minneapolis", "MN"),
    ("Tampa", "FL"),
    ("Burlington", "VT"),
];

const NAME_HEADS: [&str; 10] = [
    "Hop", "Golden", "Midnight", "River", "Cascade", "Iron", "Lazy", "Wild", "Copper", "Fog",
];
const NAME_TAILS: [&str; 10] = [
    "Trail", "Haze", "Anthem", "Crown", "Letter", "Harvest", "Echo", "Patrol", "Current", "Ritual",
];

/// Generate the clean Beers-like table. Columns: `id`, `name`, `style`
/// (target), `abv`, `ibu`, `ounces`, `brewery`, `city`, `state`.
pub fn generate(config: &BeersConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Fixed brewery → (city, state) assignment: the dataset's FDs.
    let breweries: Vec<(String, &str, &str)> = (0..config.n_breweries.max(1))
        .map(|i| {
            let (city, state) = CITIES[i % CITIES.len()];
            (format!("Brewery {:02}", i), city, state)
        })
        .collect();

    let mut id = Vec::with_capacity(config.rows);
    let mut name = Vec::with_capacity(config.rows);
    let mut style = Vec::with_capacity(config.rows);
    let mut abv = Vec::with_capacity(config.rows);
    let mut ibu = Vec::with_capacity(config.rows);
    let mut ounces = Vec::with_capacity(config.rows);
    let mut brewery = Vec::with_capacity(config.rows);
    let mut city = Vec::with_capacity(config.rows);
    let mut state = Vec::with_capacity(config.rows);

    let total_weight: f64 = STYLES.iter().map(|s| s.3).sum();
    let abv_noise = Normal::new(0.0, 0.45).expect("valid");
    let ibu_noise = Normal::new(0.0, 6.0).expect("valid");

    for i in 0..config.rows {
        // Sample a style by weight.
        let mut pick = rng.random_range(0.0..total_weight);
        let mut chosen = &STYLES[0];
        for s in &STYLES {
            if pick < s.3 {
                chosen = s;
                break;
            }
            pick -= s.3;
        }
        let (style_name, mean_abv, mean_ibu, _) = *chosen;

        let a = (mean_abv + abv_noise.sample(&mut rng)).clamp(3.0, 14.0);
        let b = (mean_ibu + ibu_noise.sample(&mut rng)).clamp(4.0, 120.0);
        let oz = *[12.0, 16.0, 19.2].choose(&mut rng).expect("nonempty");
        let (brew, brew_city, brew_state) = breweries.choose(&mut rng).expect("nonempty").clone();

        id.push(Some(i as i64 + 1));
        name.push(Some(format!(
            "{} {} #{i}",
            NAME_HEADS.choose(&mut rng).expect("nonempty"),
            NAME_TAILS.choose(&mut rng).expect("nonempty"),
        )));
        style.push(Some(style_name.to_string()));
        abv.push(Some((a * 100.0).round() / 100.0));
        ibu.push(Some(b.round()));
        ounces.push(Some(oz));
        brewery.push(Some(brew));
        city.push(Some(brew_city.to_string()));
        state.push(Some(brew_state.to_string()));
    }

    Table::new(
        "beers",
        vec![
            Column::from_i64("id", id),
            Column::from_str_vals("name", name),
            Column::from_str_vals(TARGET, style),
            Column::from_f64("abv", abv),
            Column::from_f64("ibu", ibu),
            Column::from_f64("ounces", ounces),
            Column::from_str_vals("brewery", brewery),
            Column::from_str_vals("city", city),
            Column::from_str_vals("state", state),
        ],
    )
    .expect("schema is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_schema() {
        let t = generate(&BeersConfig::default());
        assert_eq!(t.shape(), (1000, 9));
        assert_eq!(t.null_count(), 0);
        assert!(t.column_by_name(TARGET).is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate(&BeersConfig::default()),
            generate(&BeersConfig::default())
        );
    }

    #[test]
    fn brewery_determines_city_and_state() {
        let t = generate(&BeersConfig::default());
        use std::collections::HashMap;
        let mut seen: HashMap<String, (String, String)> = HashMap::new();
        for r in 0..t.n_rows() {
            let b = t.get_at(r, "brewery").unwrap().render();
            let c = t.get_at(r, "city").unwrap().render();
            let s = t.get_at(r, "state").unwrap().render();
            match seen.get(&b) {
                Some((pc, ps)) => {
                    assert_eq!((pc, ps), (&c, &s), "FD broken for {b}");
                }
                None => {
                    seen.insert(b, (c, s));
                }
            }
        }
        assert!(seen.len() > 5);
    }

    #[test]
    fn all_styles_present_with_sane_shares() {
        let t = generate(&BeersConfig::default());
        let counts = t.column_by_name(TARGET).unwrap().value_counts();
        assert_eq!(counts.len(), STYLES.len());
        // Largest class below 50%: the task is genuinely multi-class.
        assert!((counts[0].1 as f64) < 0.5 * t.n_rows() as f64);
    }

    #[test]
    fn styles_are_separable_by_abv_ibu() {
        // Mean IBU of IPAs must exceed mean IBU of lagers by a wide margin.
        let t = generate(&BeersConfig::default());
        let mut ipa = Vec::new();
        let mut lager = Vec::new();
        for r in 0..t.n_rows() {
            let style = t.get_at(r, TARGET).unwrap().render();
            let ibu = t.get_at(r, "ibu").unwrap().as_f64().unwrap();
            if style == "American IPA" {
                ipa.push(ibu);
            } else if style == "American Lager" {
                lager.push(ibu);
            }
        }
        let m_ipa = ipa.iter().sum::<f64>() / ipa.len() as f64;
        let m_lager = lager.iter().sum::<f64>() / lager.len() as f64;
        assert!(m_ipa > m_lager + 25.0, "ipa {m_ipa} lager {m_lager}");
    }

    #[test]
    fn names_are_high_cardinality() {
        let t = generate(&BeersConfig::default());
        let distinct = t.column_by_name("name").unwrap().value_counts().len();
        assert!(distinct as f64 > 0.9 * t.n_rows() as f64);
    }
}

//! # datalens-datasets
//!
//! Synthetic evaluation datasets for the DataLens reproduction.
//!
//! The paper evaluates on two real datasets (NASA airfoil and craft
//! Beers) with dirty/clean pairs. Those files are not distributable, so
//! this crate generates faithful synthetic equivalents —
//! [`nasa::generate`] (numeric features, regression target) and
//! [`beers::generate`] (mixed features, multi-class target, real FDs) —
//! and corrupts them with a configurable, seeded [`injector`] that records
//! exact cell-level ground truth ([`DirtyDataset`]). Ground truth is what
//! turns detector output into the precision/recall/F1 numbers Figure 3
//! reports.
//!
//! ```
//! use datalens_datasets::registry;
//!
//! let dd = registry::dirty("nasa", 0).unwrap();
//! assert!(!dd.errors.is_empty());
//! let perfect = dd.score_detections(&dd.error_cells());
//! assert_eq!(perfect.f1, 1.0);
//! ```

pub mod beers;
pub mod ground_truth;
pub mod hospital;
pub mod injector;
pub mod nasa;
pub mod registry;

pub use beers::BeersConfig;
pub use ground_truth::{DetectionScore, DirtyDataset, ErrorType};
pub use hospital::HospitalConfig;
pub use injector::{inject, InjectionConfig};
pub use nasa::NasaConfig;
pub use registry::{catalog, Task};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use datalens_table::{Column, Table};

    use crate::injector::{inject, InjectionConfig};

    fn small_clean(rows: usize) -> Table {
        Table::new(
            "c",
            vec![
                Column::from_f64("n", (0..rows).map(|i| Some(i as f64)).collect::<Vec<_>>()),
                Column::from_str_vals(
                    "s",
                    (0..rows)
                        .map(|i| Some(["aa", "bb", "cc"][i % 3]))
                        .collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Injection ground truth is exactly the diff of clean vs dirty.
        #[test]
        fn ground_truth_equals_diff(rate in 0.0f64..0.3, seed in any::<u64>()) {
            let clean = small_clean(120);
            let d = inject(&clean, &InjectionConfig::uniform(rate, seed));
            let diff = d.clean.diff_cells(&d.dirty).unwrap();
            let mut errs: Vec<_> = d.errors.keys().copied().collect();
            errs.sort();
            prop_assert_eq!(diff, errs);
        }

        /// Scoring invariants: precision/recall/F1 in [0,1]; TP+FN equals
        /// the number of injected errors.
        #[test]
        fn score_invariants(seed in any::<u64>()) {
            let clean = small_clean(150);
            let d = inject(&clean, &InjectionConfig::uniform(0.08, seed));
            // Detect a haphazard half of all cells.
            let detected: Vec<_> = d.dirty.cell_refs().filter(|c| (c.row + c.col) % 2 == 0).collect();
            let s = d.score_detections(&detected);
            prop_assert!(s.precision >= 0.0 && s.precision <= 1.0);
            prop_assert!(s.recall >= 0.0 && s.recall <= 1.0);
            prop_assert!(s.f1 >= 0.0 && s.f1 <= 1.0);
            prop_assert_eq!(s.true_positives + s.false_negatives, d.errors.len());
        }
    }
}

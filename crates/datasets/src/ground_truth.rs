//! Ground truth for injected errors, and detection scoring against it.
//!
//! The paper's datasets (NASA, Beers) come as dirty/clean pairs with known
//! error cells; our synthetic equivalents record the same information at
//! injection time, which is what lets Figure 3's F1 curves be computed.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use datalens_table::{CellRef, Table};

/// The kind of corruption applied to a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorType {
    /// Value replaced with an explicit null.
    MissingValue,
    /// Value replaced with a sentinel that *looks* valid (−1, 0, 99999, "?").
    DisguisedMissing,
    /// Numeric value scaled/shifted far outside its distribution.
    Outlier,
    /// String value mutated by a character-level typo.
    Typo,
    /// Categorical value swapped for a different legal category.
    CategorySwap,
    /// Dependent attribute changed so a functional dependency breaks.
    FdViolation,
}

impl ErrorType {
    pub const ALL: [ErrorType; 6] = [
        ErrorType::MissingValue,
        ErrorType::DisguisedMissing,
        ErrorType::Outlier,
        ErrorType::Typo,
        ErrorType::CategorySwap,
        ErrorType::FdViolation,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ErrorType::MissingValue => "missing_value",
            ErrorType::DisguisedMissing => "disguised_missing",
            ErrorType::Outlier => "outlier",
            ErrorType::Typo => "typo",
            ErrorType::CategorySwap => "category_swap",
            ErrorType::FdViolation => "fd_violation",
        }
    }
}

/// Precision/recall/F1 of a detection run against the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionScore {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// A dirty table paired with its clean original and the exact error mask.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirtyDataset {
    pub clean: Table,
    pub dirty: Table,
    /// Every corrupted cell and how it was corrupted.
    pub errors: BTreeMap<CellRef, ErrorType>,
}

impl DirtyDataset {
    /// All corrupted cells.
    pub fn error_cells(&self) -> Vec<CellRef> {
        self.errors.keys().copied().collect()
    }

    /// Is `cell` corrupted?
    pub fn is_error(&self, cell: CellRef) -> bool {
        self.errors.contains_key(&cell)
    }

    /// Does row `row` contain at least one corrupted cell?
    pub fn row_is_dirty(&self, row: usize) -> bool {
        self.errors.keys().any(|c| c.row == row)
    }

    /// Number of corrupted cells of the given type.
    pub fn count_of(&self, kind: ErrorType) -> usize {
        self.errors.values().filter(|&&k| k == kind).count()
    }

    /// Score a set of detected cells against the ground truth.
    pub fn score_detections(&self, detected: &[CellRef]) -> DetectionScore {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut seen = std::collections::BTreeSet::new();
        for &cell in detected {
            if !seen.insert(cell) {
                continue; // count duplicates once
            }
            if self.is_error(cell) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        let fn_ = self.errors.len() - tp;
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        DetectionScore {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            precision,
            recall,
            f1,
        }
    }

    /// Fraction of repaired cells that exactly match the clean original,
    /// over all corrupted cells (repair accuracy).
    pub fn repair_accuracy(&self, repaired: &Table) -> f64 {
        if self.errors.is_empty() {
            return 1.0;
        }
        let mut hits = 0usize;
        for &cell in self.errors.keys() {
            let clean = self.clean.get(cell).expect("cell in range");
            let fixed = repaired.get(cell).expect("cell in range");
            if clean == fixed {
                hits += 1;
            }
        }
        hits as f64 / self.errors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::{Column, Value};

    fn dataset() -> DirtyDataset {
        let clean = Table::new(
            "t",
            vec![Column::from_i64("x", [Some(1), Some(2), Some(3), Some(4)])],
        )
        .unwrap();
        let mut dirty = clean.clone();
        dirty.set(CellRef::new(1, 0), Value::Null).unwrap();
        dirty.set(CellRef::new(3, 0), Value::Int(9999)).unwrap();
        let mut errors = BTreeMap::new();
        errors.insert(CellRef::new(1, 0), ErrorType::MissingValue);
        errors.insert(CellRef::new(3, 0), ErrorType::Outlier);
        DirtyDataset {
            clean,
            dirty,
            errors,
        }
    }

    #[test]
    fn error_accounting() {
        let d = dataset();
        assert_eq!(d.error_cells().len(), 2);
        assert!(d.is_error(CellRef::new(1, 0)));
        assert!(!d.is_error(CellRef::new(0, 0)));
        assert!(d.row_is_dirty(3));
        assert!(!d.row_is_dirty(2));
        assert_eq!(d.count_of(ErrorType::Outlier), 1);
        assert_eq!(d.count_of(ErrorType::Typo), 0);
    }

    #[test]
    fn perfect_detection_scores_one() {
        let d = dataset();
        let s = d.score_detections(&d.error_cells());
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn partial_detection() {
        let d = dataset();
        let s = d.score_detections(&[CellRef::new(1, 0), CellRef::new(0, 0)]);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.recall, 0.5);
        assert_eq!(s.f1, 0.5);
    }

    #[test]
    fn duplicate_detections_counted_once() {
        let d = dataset();
        let cell = CellRef::new(1, 0);
        let s = d.score_detections(&[cell, cell, cell]);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
    }

    #[test]
    fn empty_detection_zero_f1() {
        let d = dataset();
        let s = d.score_detections(&[]);
        assert_eq!(s.f1, 0.0);
        assert_eq!(s.false_negatives, 2);
    }

    #[test]
    fn repair_accuracy_counts_exact_restores() {
        let d = dataset();
        // Repair one of the two cells correctly.
        let mut repaired = d.dirty.clone();
        repaired.set(CellRef::new(1, 0), Value::Int(2)).unwrap();
        assert_eq!(d.repair_accuracy(&repaired), 0.5);
        assert_eq!(d.repair_accuracy(&d.clean), 1.0);
    }
}

//! Hospital-like dataset generator.
//!
//! The Hospital dataset is the classic FD-heavy benchmark of the data-
//! cleaning literature (HoloClean, NADEEF, RAHA, and the authors' own
//! REIN benchmark all evaluate on it). It is almost entirely categorical
//! with a dense web of functional dependencies — the regime where
//! rule-based and knowledge-based detection shine and statistical
//! outlier detectors are nearly blind. This synthetic equivalent
//! preserves that character:
//!
//! - `provider_id` is a key;
//! - `hospital_name → city, state, zip, county, phone` (hospital facts);
//! - `zip → city, state` (geography);
//! - `measure_code → measure_name, condition` (the measure catalogue);
//! - `state` values come from the US-state domain (KATARA-alignable);
//! - downstream task: multi-class classification of `condition` from the
//!   measure/hospital attributes.

use rand::prelude::*;
use rand::rngs::StdRng;

use datalens_table::{Column, Table};

/// Options for [`generate`].
#[derive(Debug, Clone)]
pub struct HospitalConfig {
    pub rows: usize,
    pub n_hospitals: usize,
    pub seed: u64,
}

impl Default for HospitalConfig {
    fn default() -> Self {
        HospitalConfig {
            rows: 1000,
            n_hospitals: 20,
            seed: 0,
        }
    }
}

/// The classification target column.
pub const TARGET: &str = "condition";

/// `(measure code, measure name, condition)` — the measure catalogue.
const MEASURES: [(&str, &str, &str); 12] = [
    ("AMI-1", "aspirin at arrival", "heart attack"),
    ("AMI-2", "aspirin at discharge", "heart attack"),
    ("AMI-8a", "primary pci within 90 minutes", "heart attack"),
    ("HF-1", "discharge instructions", "heart failure"),
    ("HF-2", "evaluation of lvs function", "heart failure"),
    ("HF-3", "ace inhibitor for lvsd", "heart failure"),
    ("PN-2", "pneumococcal vaccination", "pneumonia"),
    ("PN-3b", "blood culture before antibiotic", "pneumonia"),
    ("PN-6", "initial antibiotic selection", "pneumonia"),
    (
        "SCIP-1",
        "prophylactic antibiotic within 1 hour",
        "surgical infection prevention",
    ),
    (
        "SCIP-2",
        "prophylactic antibiotic selection",
        "surgical infection prevention",
    ),
    (
        "SCIP-3",
        "antibiotic discontinued within 24 hours",
        "surgical infection prevention",
    ),
];

const LOCATIONS: [(&str, &str, &str, &str); 10] = [
    ("birmingham", "AL", "35233", "jefferson"),
    ("dothan", "AL", "36301", "houston"),
    ("mobile", "AL", "36608", "mobile"),
    ("huntsville", "AL", "35801", "madison"),
    ("atlanta", "GA", "30303", "fulton"),
    ("savannah", "GA", "31401", "chatham"),
    ("nashville", "TN", "37203", "davidson"),
    ("memphis", "TN", "38103", "shelby"),
    ("jackson", "MS", "39216", "hinds"),
    ("gulfport", "MS", "39501", "harrison"),
];

const NAME_PARTS: [&str; 10] = [
    "general",
    "regional",
    "memorial",
    "baptist",
    "methodist",
    "university",
    "community",
    "sacred heart",
    "st mary",
    "providence",
];

/// Generate the clean hospital-like table. Columns: `provider_id`,
/// `hospital_name`, `city`, `state`, `zip`, `county`, `phone`,
/// `measure_code`, `measure_name`, `condition` (target), `score`.
pub fn generate(config: &HospitalConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Fixed hospital facts (the FD sources).
    struct Hospital {
        name: String,
        city: &'static str,
        state: &'static str,
        zip: &'static str,
        county: &'static str,
        phone: String,
        /// Per-hospital quality bias feeding `score`.
        bias: f64,
    }
    let hospitals: Vec<Hospital> = (0..config.n_hospitals.max(1))
        .map(|i| {
            let (city, state, zip, county) = LOCATIONS[i % LOCATIONS.len()];
            // Latin-square pairing keeps (city, name-part) combinations —
            // and therefore hospital names — unique for up to 100
            // hospitals, preserving the hospital_name → * FDs.
            let part = NAME_PARTS[(i + i / LOCATIONS.len()) % NAME_PARTS.len()];
            Hospital {
                name: format!("{city} {part} hospital"),
                city,
                state,
                zip,
                county,
                phone: format!("205{:07}", 1000000 + i as u64 * 13579 % 8999999),
                bias: rng.random_range(-8.0..8.0),
            }
        })
        .collect();

    let mut provider_id = Vec::with_capacity(config.rows);
    let mut name = Vec::with_capacity(config.rows);
    let mut city = Vec::with_capacity(config.rows);
    let mut state = Vec::with_capacity(config.rows);
    let mut zip = Vec::with_capacity(config.rows);
    let mut county = Vec::with_capacity(config.rows);
    let mut phone = Vec::with_capacity(config.rows);
    let mut measure_code = Vec::with_capacity(config.rows);
    let mut measure_name = Vec::with_capacity(config.rows);
    let mut condition = Vec::with_capacity(config.rows);
    let mut score = Vec::with_capacity(config.rows);

    for i in 0..config.rows {
        let h = hospitals.choose(&mut rng).expect("nonempty");
        let (code, mname, cond) = *MEASURES.choose(&mut rng).expect("nonempty");
        // Scores are condition-dependent (so `condition` is learnable from
        // score + measure attributes) plus a hospital bias.
        let base = match cond {
            "heart attack" => 88.0,
            "heart failure" => 79.0,
            "pneumonia" => 71.0,
            _ => 62.0,
        };
        let s = (base + h.bias + rng.random_range(-4.0..4.0)).clamp(0.0, 100.0);

        provider_id.push(Some(10_000 + i as i64));
        name.push(Some(h.name.clone()));
        city.push(Some(h.city.to_string()));
        state.push(Some(h.state.to_string()));
        zip.push(Some(h.zip.to_string()));
        county.push(Some(h.county.to_string()));
        phone.push(Some(h.phone.clone()));
        measure_code.push(Some(code.to_string()));
        measure_name.push(Some(mname.to_string()));
        condition.push(Some(cond.to_string()));
        score.push(Some((s * 10.0).round() / 10.0));
    }

    Table::new(
        "hospital",
        vec![
            Column::from_i64("provider_id", provider_id),
            Column::from_str_vals("hospital_name", name),
            Column::from_str_vals("city", city),
            Column::from_str_vals("state", state),
            Column::from_str_vals("zip", zip),
            Column::from_str_vals("county", county),
            Column::from_str_vals("phone", phone),
            Column::from_str_vals("measure_code", measure_code),
            Column::from_str_vals("measure_name", measure_name),
            Column::from_str_vals(TARGET, condition),
            Column::from_f64("score", score),
        ],
    )
    .expect("schema is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn fd_holds(t: &Table, det: &str, dep: &str) -> bool {
        let mut seen: HashMap<String, String> = HashMap::new();
        for r in 0..t.n_rows() {
            let k = t.get_at(r, det).unwrap().render();
            let v = t.get_at(r, dep).unwrap().render();
            match seen.get(&k) {
                Some(prev) if prev != &v => return false,
                Some(_) => {}
                None => {
                    seen.insert(k, v);
                }
            }
        }
        true
    }

    #[test]
    fn shape_and_determinism() {
        let t = generate(&HospitalConfig::default());
        assert_eq!(t.shape(), (1000, 11));
        assert_eq!(t.null_count(), 0);
        assert_eq!(t, generate(&HospitalConfig::default()));
    }

    #[test]
    fn dense_fd_web_holds() {
        let t = generate(&HospitalConfig::default());
        for (det, dep) in [
            ("hospital_name", "city"),
            ("hospital_name", "state"),
            ("hospital_name", "zip"),
            ("hospital_name", "phone"),
            ("zip", "city"),
            ("zip", "state"),
            ("measure_code", "measure_name"),
            ("measure_code", "condition"),
        ] {
            assert!(fd_holds(&t, det, dep), "{det} → {dep} broken");
        }
        // And a non-FD to prove the checker discriminates.
        assert!(!fd_holds(&t, "state", "city"));
    }

    #[test]
    fn state_column_is_katara_alignable() {
        use std::collections::HashSet;
        let t = generate(&HospitalConfig::default());
        let states: HashSet<String> = (0..t.n_rows())
            .map(|r| t.get_at(r, "state").unwrap().render())
            .collect();
        for s in &states {
            assert!(["AL", "GA", "TN", "MS"].contains(&s.as_str()), "{s}");
        }
    }

    #[test]
    fn condition_is_learnable_from_score() {
        // Condition-conditional score means differ by construction.
        let t = generate(&HospitalConfig::default());
        let mut sums: HashMap<String, (f64, usize)> = HashMap::new();
        for r in 0..t.n_rows() {
            let c = t.get_at(r, TARGET).unwrap().render();
            let s = t.get_at(r, "score").unwrap().as_f64().unwrap();
            let e = sums.entry(c).or_insert((0.0, 0));
            e.0 += s;
            e.1 += 1;
        }
        let means: Vec<f64> = sums.values().map(|(s, n)| s / *n as f64).collect();
        let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 15.0, "condition means too close: {means:?}");
    }

    #[test]
    fn four_conditions_present() {
        let t = generate(&HospitalConfig::default());
        let distinct = t.column_by_name(TARGET).unwrap().value_counts().len();
        assert_eq!(distinct, 4);
    }
}

//! Samplers: random, grid, and TPE (the Optuna default the paper uses).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::space::{ParamDomain, ParamValue, Params, SearchSpace};
use crate::study::{Direction, Trial};

/// Strategy that proposes the next parameter assignment.
pub trait Sampler: Send {
    fn sample(&mut self, space: &SearchSpace, history: &[Trial], direction: Direction) -> Params;
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

/// Uniform random sampling (Optuna's `RandomSampler`); also the baseline
/// the TPE ablation bench compares against.
pub struct RandomSampler {
    rng: StdRng,
}

impl RandomSampler {
    pub fn new(seed: u64) -> RandomSampler {
        RandomSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn sample_uniform(rng: &mut StdRng, domain: &ParamDomain) -> ParamValue {
        match domain {
            ParamDomain::Categorical(choices) => {
                ParamValue::Str(choices[rng.random_range(0..choices.len())].clone())
            }
            ParamDomain::Int { lo, hi } => ParamValue::Int(rng.random_range(*lo..=*hi)),
            ParamDomain::Float { lo, hi, log } => {
                if *log {
                    ParamValue::Float(rng.random_range(lo.ln()..hi.ln()).exp())
                } else {
                    ParamValue::Float(rng.random_range(*lo..*hi))
                }
            }
        }
    }
}

impl Sampler for RandomSampler {
    fn sample(&mut self, space: &SearchSpace, _history: &[Trial], _dir: Direction) -> Params {
        space
            .params()
            .iter()
            .map(|(name, domain)| (name.clone(), Self::sample_uniform(&mut self.rng, domain)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------------

/// Exhaustive grid enumeration for fully-discrete spaces; wraps around
/// after the grid is exhausted.
pub struct GridSampler {
    cursor: usize,
}

impl GridSampler {
    pub fn new() -> GridSampler {
        GridSampler { cursor: 0 }
    }
}

impl Default for GridSampler {
    fn default() -> Self {
        GridSampler::new()
    }
}

impl Sampler for GridSampler {
    fn sample(&mut self, space: &SearchSpace, _history: &[Trial], _dir: Direction) -> Params {
        let card = space
            .cardinality()
            .expect("GridSampler requires a fully discrete space");
        let mut index = self.cursor % card.max(1);
        self.cursor += 1;
        let mut out = Params::new();
        for (name, domain) in space.params() {
            let v = match domain {
                ParamDomain::Categorical(choices) => {
                    let pick = index % choices.len();
                    index /= choices.len();
                    ParamValue::Str(choices[pick].clone())
                }
                ParamDomain::Int { lo, hi } => {
                    let span = usize::try_from(hi - lo + 1).expect("validated discrete");
                    let pick = index % span;
                    index /= span;
                    ParamValue::Int(lo + pick as i64)
                }
                ParamDomain::Float { .. } => unreachable!("cardinality() returned Some"),
            };
            out.insert(name.clone(), v);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// TPE
// ---------------------------------------------------------------------------

/// Tree-structured Parzen Estimator (Bergstra et al., 2011) — the
/// sequential model-based sampler behind Optuna, which §4 of the paper
/// relies on to navigate the cleaning-tool space.
///
/// Completed trials split into a *good* set (the top `gamma` fraction
/// under the study direction) and a *bad* set. For each parameter,
/// densities l(x) (good) and g(x) (bad) are estimated — smoothed
/// categorical frequencies, or Parzen windows for numeric domains — and
/// `n_candidates` draws from l are scored by l(x)/g(x); the best ratio
/// wins.
pub struct TpeSampler {
    rng: StdRng,
    /// Trials sampled uniformly before the model kicks in.
    pub n_startup: usize,
    /// Fraction of history considered "good".
    pub gamma: f64,
    /// Candidate draws per parameter.
    pub n_candidates: usize,
}

impl TpeSampler {
    pub fn new(seed: u64) -> TpeSampler {
        TpeSampler {
            rng: StdRng::seed_from_u64(seed),
            n_startup: 5,
            gamma: 0.25,
            n_candidates: 24,
        }
    }

    /// Split history into (good, bad) by objective.
    fn split<'a>(
        &self,
        history: &'a [Trial],
        direction: Direction,
    ) -> (Vec<&'a Trial>, Vec<&'a Trial>) {
        let mut done: Vec<&Trial> = history
            .iter()
            .filter(|t| t.value.is_some_and(|v| v.is_finite()))
            .collect();
        done.sort_by(|a, b| match (a.value, b.value) {
            (Some(va), Some(vb)) if direction.better(va, vb) => std::cmp::Ordering::Less,
            (Some(va), Some(vb)) if direction.better(vb, va) => std::cmp::Ordering::Greater,
            _ => std::cmp::Ordering::Equal,
        });
        let n_good = ((done.len() as f64 * self.gamma).ceil() as usize).clamp(1, done.len().max(1));
        let good = done[..n_good.min(done.len())].to_vec();
        let bad = done[n_good.min(done.len())..].to_vec();
        (good, bad)
    }

    /// Smoothed categorical probability of `choice` among `trials`.
    fn cat_prob(trials: &[&Trial], name: &str, choice: &str, n_choices: usize) -> f64 {
        let count = trials
            .iter()
            .filter(|t| t.params.get(name).and_then(ParamValue::as_str) == Some(choice))
            .count();
        // Laplace smoothing keeps ratios finite.
        (count as f64 + 1.0) / (trials.len() as f64 + n_choices as f64)
    }

    /// Parzen-window density of `x` among numeric observations.
    fn parzen_density(obs: &[f64], x: f64, lo: f64, hi: f64) -> f64 {
        let span = (hi - lo).max(1e-12);
        // Fixed-fraction bandwidth with sample-size shrinkage.
        let bw = (span / (1.0 + obs.len() as f64).sqrt()).max(span * 0.05);
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * bw);
        // Mixture of kernels + a uniform floor (the "prior" kernel).
        let uniform = 1.0 / span;
        if obs.is_empty() {
            return uniform;
        }
        let kernels: f64 = obs
            .iter()
            .map(|&o| norm * (-0.5 * ((x - o) / bw).powi(2)).exp())
            .sum::<f64>()
            / obs.len() as f64;
        0.9 * kernels + 0.1 * uniform
    }

    fn numeric_obs(trials: &[&Trial], name: &str, log: bool) -> Vec<f64> {
        trials
            .iter()
            .filter_map(|t| t.params.get(name).and_then(ParamValue::as_f64))
            .map(|v| if log { v.ln() } else { v })
            .collect()
    }
}

impl Sampler for TpeSampler {
    fn sample(&mut self, space: &SearchSpace, history: &[Trial], direction: Direction) -> Params {
        let n_done = history
            .iter()
            .filter(|t| t.value.is_some_and(|v| v.is_finite()))
            .count();
        if n_done < self.n_startup {
            let mut r = RandomSampler {
                rng: StdRng::seed_from_u64(self.rng.random()),
            };
            return r.sample(space, history, direction);
        }
        let (good, bad) = self.split(history, direction);

        let mut out = Params::new();
        for (name, domain) in space.params() {
            let value = match domain {
                ParamDomain::Categorical(choices) => {
                    // Sample candidates from l's categorical distribution,
                    // score by l/g.
                    let l_probs: Vec<f64> = choices
                        .iter()
                        .map(|c| Self::cat_prob(&good, name, c, choices.len()))
                        .collect();
                    let total: f64 = l_probs.iter().sum();
                    let mut best: Option<(usize, f64)> = None;
                    for _ in 0..self.n_candidates {
                        // Roulette draw from l.
                        let mut target = self.rng.random_range(0.0..total);
                        let mut pick = choices.len() - 1;
                        for (i, p) in l_probs.iter().enumerate() {
                            if target < *p {
                                pick = i;
                                break;
                            }
                            target -= p;
                        }
                        let g = Self::cat_prob(&bad, name, &choices[pick], choices.len());
                        let ratio = l_probs[pick] / g;
                        if best.as_ref().is_none_or(|(_, r)| ratio > *r) {
                            best = Some((pick, ratio));
                        }
                    }
                    ParamValue::Str(choices[best.expect("candidates > 0").0].clone())
                }
                ParamDomain::Int { lo, hi } => {
                    let obs_good = Self::numeric_obs(&good, name, false);
                    let obs_bad = Self::numeric_obs(&bad, name, false);
                    let (flo, fhi) = (*lo as f64, *hi as f64);
                    let mut best: Option<(f64, f64)> = None;
                    for _ in 0..self.n_candidates {
                        let x = if obs_good.is_empty() || self.rng.random_bool(0.2) {
                            self.rng.random_range(flo..=fhi)
                        } else {
                            let center = obs_good[self.rng.random_range(0..obs_good.len())];
                            let bw = ((fhi - flo) / (1.0 + obs_good.len() as f64).sqrt())
                                .max((fhi - flo) * 0.05);
                            (center + bw * sample_standard_normal(&mut self.rng)).clamp(flo, fhi)
                        };
                        let l = Self::parzen_density(&obs_good, x, flo, fhi);
                        let g = Self::parzen_density(&obs_bad, x, flo, fhi);
                        let ratio = l / g.max(1e-12);
                        if best.as_ref().is_none_or(|(_, r)| ratio > *r) {
                            best = Some((x, ratio));
                        }
                    }
                    ParamValue::Int(
                        (best.expect("candidates > 0").0.round() as i64).clamp(*lo, *hi),
                    )
                }
                ParamDomain::Float { lo, hi, log } => {
                    let (tlo, thi) = if *log { (lo.ln(), hi.ln()) } else { (*lo, *hi) };
                    let obs_good = Self::numeric_obs(&good, name, *log);
                    let obs_bad = Self::numeric_obs(&bad, name, *log);
                    let mut best: Option<(f64, f64)> = None;
                    for _ in 0..self.n_candidates {
                        let x = if obs_good.is_empty() || self.rng.random_bool(0.2) {
                            self.rng.random_range(tlo..thi)
                        } else {
                            let center = obs_good[self.rng.random_range(0..obs_good.len())];
                            let bw = ((thi - tlo) / (1.0 + obs_good.len() as f64).sqrt())
                                .max((thi - tlo) * 0.05);
                            (center + bw * sample_standard_normal(&mut self.rng)).clamp(tlo, thi)
                        };
                        let l = Self::parzen_density(&obs_good, x, tlo, thi);
                        let g = Self::parzen_density(&obs_bad, x, tlo, thi);
                        let ratio = l / g.max(1e-12);
                        if best.as_ref().is_none_or(|(_, r)| ratio > *r) {
                            best = Some((x, ratio));
                        }
                    }
                    let x = best.expect("candidates > 0").0;
                    ParamValue::Float(if *log { x.exp() } else { x }.clamp(*lo, *hi))
                }
            };
            out.insert(name.clone(), value);
        }
        out
    }
}

/// Box–Muller standard normal draw.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Study;

    fn quadratic_space() -> SearchSpace {
        SearchSpace::new().float("x", -10.0, 10.0)
    }

    #[test]
    fn random_sampler_stays_in_domain() {
        let space = SearchSpace::new()
            .categorical("c", ["p", "q"])
            .int("i", -5, 5)
            .log_float("f", 0.001, 10.0);
        let mut s = RandomSampler::new(1);
        for _ in 0..100 {
            let p = s.sample(&space, &[], Direction::Minimize);
            assert!(space.validate(&p), "{p:?}");
        }
    }

    #[test]
    fn grid_sampler_enumerates_all_points() {
        let space = SearchSpace::new()
            .categorical("c", ["p", "q"])
            .int("i", 0, 2);
        let mut s = GridSampler::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let p = s.sample(&space, &[], Direction::Minimize);
            seen.insert(format!("{p:?}"));
        }
        assert_eq!(seen.len(), 6);
        // Wraps around afterwards.
        let again = s.sample(&space, &[], Direction::Minimize);
        assert!(seen.contains(&format!("{again:?}")));
    }

    #[test]
    fn tpe_beats_random_on_quadratic() {
        // Average best value after 40 trials over a pool of seeds. The
        // pool must be wide enough that per-seed noise from the random
        // baseline cannot mask TPE's advantage.
        let objective = |p: &Params| {
            let x = p["x"].as_f64().unwrap();
            (x - 3.0) * (x - 3.0)
        };
        let mut tpe_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..32 {
            let mut tpe = Study::new(
                Direction::Minimize,
                quadratic_space(),
                Box::new(TpeSampler::new(seed)),
            );
            tpe.optimize(40, objective);
            tpe_total += tpe.best_trial().unwrap().value.unwrap();
            let mut rnd = Study::new(
                Direction::Minimize,
                quadratic_space(),
                Box::new(RandomSampler::new(seed)),
            );
            rnd.optimize(40, objective);
            rnd_total += rnd.best_trial().unwrap().value.unwrap();
        }
        assert!(
            tpe_total < rnd_total,
            "TPE {tpe_total:.4} should beat random {rnd_total:.4}"
        );
    }

    #[test]
    fn tpe_concentrates_categorical_choices() {
        // Objective: "good" choice scores 0, others 1. After warmup, TPE
        // should pick "good" most of the time.
        let space = SearchSpace::new().categorical("c", ["bad1", "good", "bad2", "bad3"]);
        let mut study = Study::new(Direction::Minimize, space, Box::new(TpeSampler::new(3)));
        study.optimize(60, |p| {
            if p["c"].as_str() == Some("good") {
                0.0
            } else {
                1.0
            }
        });
        let late_good = study.trials()[30..]
            .iter()
            .filter(|t| t.params["c"].as_str() == Some("good"))
            .count();
        assert!(late_good > 15, "TPE picked good only {late_good}/30 times");
    }

    #[test]
    fn tpe_stays_in_domain() {
        let space = SearchSpace::new()
            .categorical("c", ["p", "q"])
            .int("i", 0, 3)
            .float("f", 0.0, 1.0);
        let mut study = Study::new(
            Direction::Maximize,
            space.clone(),
            Box::new(TpeSampler::new(9)),
        );
        study.optimize(30, |p| p["f"].as_f64().unwrap());
        for t in study.trials() {
            assert!(space.validate(&t.params), "{:?}", t.params);
        }
    }

    #[test]
    fn tpe_handles_maximize_direction() {
        let space = SearchSpace::new().float("x", 0.0, 1.0);
        let mut study = Study::new(Direction::Maximize, space, Box::new(TpeSampler::new(5)));
        study.optimize(40, |p| p["x"].as_f64().unwrap());
        assert!(study.best_trial().unwrap().value.unwrap() > 0.8);
    }
}

//! Studies and trials — the Optuna-style optimisation loop.

use serde::{Deserialize, Serialize};

use crate::sampler::Sampler;
use crate::space::{Params, SearchSpace};

/// Whether the objective is minimised (MSE) or maximised (F1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    Minimize,
    Maximize,
}

impl Direction {
    /// Is `a` better than `b` under this direction?
    pub fn better(self, a: f64, b: f64) -> bool {
        match self {
            Direction::Minimize => a < b,
            Direction::Maximize => a > b,
        }
    }
}

/// One evaluated (or pending) parameter assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    pub id: usize,
    pub params: Params,
    /// Objective value; `None` while pending or failed.
    pub value: Option<f64>,
}

/// A sequential optimisation study.
pub struct Study {
    direction: Direction,
    space: SearchSpace,
    sampler: Box<dyn Sampler>,
    trials: Vec<Trial>,
}

impl Study {
    pub fn new(direction: Direction, space: SearchSpace, sampler: Box<dyn Sampler>) -> Study {
        Study {
            direction,
            space,
            sampler,
            trials: Vec::new(),
        }
    }

    pub fn direction(&self) -> Direction {
        self.direction
    }

    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Ask the sampler for the next parameters (ask/tell interface).
    pub fn ask(&mut self) -> Trial {
        let params = self
            .sampler
            .sample(&self.space, &self.trials, self.direction);
        debug_assert!(self.space.validate(&params), "sampler left the space");
        let trial = Trial {
            id: self.trials.len(),
            params,
            value: None,
        };
        self.trials.push(trial.clone());
        trial
    }

    /// Report a trial's objective value. Unknown ids are ignored — a
    /// stale id from a dropped trial must not take the study down.
    pub fn tell(&mut self, id: usize, value: f64) {
        let Some(t) = self.trials.get_mut(id) else {
            return;
        };
        t.value = Some(value);
    }

    /// Run `n_trials` evaluations of `objective`.
    pub fn optimize(&mut self, n_trials: usize, mut objective: impl FnMut(&Params) -> f64) {
        for _ in 0..n_trials {
            let trial = self.ask();
            let value = objective(&trial.params);
            self.tell(trial.id, value);
        }
    }

    /// The best completed trial so far.
    pub fn best_trial(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .filter(|t| t.value.is_some_and(|v| v.is_finite()))
            .max_by(|a, b| match (a.value, b.value) {
                (Some(va), Some(vb)) if self.direction.better(va, vb) => {
                    std::cmp::Ordering::Greater
                }
                (Some(va), Some(vb)) if self.direction.better(vb, va) => std::cmp::Ordering::Less,
                // Tie (or a hole the filter already excluded): prefer
                // the earlier trial (stable).
                _ => b.id.cmp(&a.id),
            })
    }

    /// Best value per trial index — the convergence curve Figure 5 plots.
    pub fn best_value_curve(&self) -> Vec<f64> {
        let mut best = match self.direction {
            Direction::Minimize => f64::INFINITY,
            Direction::Maximize => f64::NEG_INFINITY,
        };
        let mut out = Vec::new();
        for t in &self.trials {
            if let Some(v) = t.value {
                if v.is_finite() && self.direction.better(v, best) {
                    best = v;
                }
            }
            out.push(best);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::RandomSampler;
    use crate::space::ParamValue;

    fn study(direction: Direction) -> Study {
        Study::new(
            direction,
            SearchSpace::new().int("x", 0, 100),
            Box::new(RandomSampler::new(7)),
        )
    }

    #[test]
    fn optimize_tracks_best_minimize() {
        let mut s = study(Direction::Minimize);
        s.optimize(50, |p| {
            let x = p["x"].as_i64().unwrap() as f64;
            (x - 40.0).abs()
        });
        let best = s.best_trial().unwrap();
        let bx = best.params["x"].as_i64().unwrap();
        assert!((bx - 40).abs() <= 10, "best x = {bx}");
        assert_eq!(s.trials().len(), 50);
    }

    #[test]
    fn optimize_tracks_best_maximize() {
        let mut s = study(Direction::Maximize);
        s.optimize(50, |p| p["x"].as_i64().unwrap() as f64);
        let best = s.best_trial().unwrap();
        assert!(best.params["x"].as_i64().unwrap() > 60);
    }

    #[test]
    fn ask_tell_round_trip() {
        let mut s = study(Direction::Minimize);
        let t = s.ask();
        assert_eq!(t.id, 0);
        s.tell(0, 5.0);
        assert_eq!(s.best_trial().unwrap().value, Some(5.0));
    }

    #[test]
    fn best_value_curve_is_monotone() {
        let mut s = study(Direction::Minimize);
        s.optimize(30, |p| p["x"].as_i64().unwrap() as f64);
        let curve = s.best_value_curve();
        assert_eq!(curve.len(), 30);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn non_finite_values_are_ignored_for_best() {
        let mut s = study(Direction::Minimize);
        let t = s.ask();
        s.tell(t.id, f64::NAN);
        assert!(s.best_trial().is_none());
        let t = s.ask();
        s.tell(t.id, 3.0);
        assert_eq!(s.best_trial().unwrap().value, Some(3.0));
    }

    #[test]
    fn ties_prefer_earlier_trial() {
        let mut s = study(Direction::Minimize);
        let a = s.ask();
        s.tell(a.id, 1.0);
        let b = s.ask();
        s.tell(b.id, 1.0);
        assert_eq!(s.best_trial().unwrap().id, 0);
    }

    #[test]
    fn sampled_params_satisfy_space() {
        let mut s = study(Direction::Minimize);
        for _ in 0..20 {
            let t = s.ask();
            assert!(s.space().validate(&t.params));
            s.tell(t.id, 0.0);
        }
        // ParamValue accessor sanity.
        let t = &s.trials()[0];
        assert!(matches!(t.params["x"], ParamValue::Int(_)));
    }
}

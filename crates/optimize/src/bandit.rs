//! UCB1 bandit sampler — the paper's future-work item (3): "exploring the
//! use of reinforcement learning for dynamic tool selection."
//!
//! For fully-discrete spaces, every grid point is an arm; the sampler
//! plays each arm once, then picks the arm maximising the UCB1 index
//! `mean_reward + c·sqrt(ln t / n_i)`. Rewards are normalised objective
//! values (min-max over history, flipped for minimisation), so the bandit
//! works under either direction.

use crate::sampler::{GridSampler, Sampler};
use crate::space::{ParamValue, Params, SearchSpace};
use crate::study::{Direction, Trial};

/// UCB1 over the discrete grid of a search space.
pub struct UcbSampler {
    /// Exploration coefficient (√2 is the classic choice).
    pub exploration: f64,
}

impl UcbSampler {
    pub fn new() -> UcbSampler {
        UcbSampler {
            exploration: std::f64::consts::SQRT_2,
        }
    }

    /// Enumerate all grid points of a discrete space.
    fn arms(space: &SearchSpace) -> Vec<Params> {
        let card = space
            .cardinality()
            .expect("UcbSampler requires a fully discrete space");
        let mut grid = GridSampler::new();
        (0..card)
            .map(|_| grid.sample(space, &[], Direction::Minimize))
            .collect()
    }
}

impl Default for UcbSampler {
    fn default() -> Self {
        UcbSampler::new()
    }
}

impl Sampler for UcbSampler {
    fn sample(&mut self, space: &SearchSpace, history: &[Trial], direction: Direction) -> Params {
        let arms = Self::arms(space);
        // Completed trials with finite values.
        let done: Vec<&Trial> = history
            .iter()
            .filter(|t| t.value.is_some_and(|v| v.is_finite()))
            .collect();

        // Per-arm statistics.
        let mut counts = vec![0usize; arms.len()];
        let mut sums = vec![0.0f64; arms.len()];
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for t in &done {
            let v = t.value.expect("filtered");
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let span = (hi - lo).max(1e-12);
        for t in &done {
            if let Some(arm) = arms.iter().position(|a| a == &t.params) {
                let v = t.value.expect("filtered");
                // Normalised reward in [0, 1]; higher = better.
                let reward = match direction {
                    Direction::Maximize => (v - lo) / span,
                    Direction::Minimize => (hi - v) / span,
                };
                counts[arm] += 1;
                sums[arm] += reward;
            }
        }

        // Unplayed arm? Play the first one (round-robin initialisation).
        if let Some(arm) = counts.iter().position(|&c| c == 0) {
            return arms[arm].clone();
        }

        // UCB1 index.
        let t_total: usize = counts.iter().sum();
        let log_t = (t_total.max(1) as f64).ln();
        let best = (0..arms.len())
            .max_by(|&a, &b| {
                let ua = sums[a] / counts[a] as f64
                    + self.exploration * (log_t / counts[a] as f64).sqrt();
                let ub = sums[b] / counts[b] as f64
                    + self.exploration * (log_t / counts[b] as f64).sqrt();
                ua.total_cmp(&ub)
            })
            .expect("at least one arm");
        arms[best].clone()
    }
}

/// Convenience: the `(detector, repairer)` arm a set of params denotes
/// (used by the ablation bench's reporting).
pub fn arm_label(params: &Params) -> String {
    params
        .values()
        .map(|v| match v {
            ParamValue::Str(s) => s.clone(),
            ParamValue::Int(i) => i.to_string(),
            ParamValue::Float(f) => format!("{f:.3}"),
        })
        .collect::<Vec<_>>()
        .join("+")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Study;

    fn space() -> SearchSpace {
        SearchSpace::new().categorical("tool", ["bad1", "good", "bad2"])
    }

    #[test]
    fn plays_every_arm_once_first() {
        let mut study = Study::new(Direction::Minimize, space(), Box::new(UcbSampler::new()));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let t = study.ask();
            seen.insert(t.params["tool"].as_str().unwrap().to_string());
            study.tell(t.id, 1.0);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn converges_to_best_arm_minimise() {
        let mut study = Study::new(Direction::Minimize, space(), Box::new(UcbSampler::new()));
        study.optimize(40, |p| {
            if p["tool"].as_str() == Some("good") {
                1.0
            } else {
                5.0
            }
        });
        let good_plays = study.trials()[10..]
            .iter()
            .filter(|t| t.params["tool"].as_str() == Some("good"))
            .count();
        assert!(good_plays > 15, "good played {good_plays}/30 in tail");
        assert_eq!(
            study.best_trial().unwrap().params["tool"].as_str(),
            Some("good")
        );
    }

    #[test]
    fn converges_under_maximise_too() {
        let mut study = Study::new(Direction::Maximize, space(), Box::new(UcbSampler::new()));
        study.optimize(40, |p| {
            if p["tool"].as_str() == Some("good") {
                0.9
            } else {
                0.1
            }
        });
        assert_eq!(
            study.best_trial().unwrap().params["tool"].as_str(),
            Some("good")
        );
    }

    #[test]
    fn still_explores_under_ties() {
        // All arms equal: UCB keeps rotating rather than fixating.
        let mut study = Study::new(Direction::Minimize, space(), Box::new(UcbSampler::new()));
        study.optimize(30, |_| 1.0);
        let mut plays = std::collections::HashMap::new();
        for t in study.trials() {
            *plays
                .entry(t.params["tool"].as_str().unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        assert!(plays.values().all(|&c| c >= 5), "{plays:?}");
    }

    #[test]
    fn arm_label_renders() {
        let mut p = Params::new();
        p.insert("detector".into(), ParamValue::Str("sd".into()));
        p.insert("repairer".into(), ParamValue::Str("ml".into()));
        assert_eq!(arm_label(&p), "sd+ml");
    }

    #[test]
    #[should_panic(expected = "discrete")]
    fn rejects_continuous_spaces() {
        let mut s = UcbSampler::new();
        let space = SearchSpace::new().float("x", 0.0, 1.0);
        s.sample(&space, &[], Direction::Minimize);
    }
}

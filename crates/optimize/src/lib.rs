//! # datalens-optimize
//!
//! Sequential model-based hyperparameter optimisation — the reproduction's
//! stand-in for Optuna (§4 "Iterative Cleaning"). The paper formulates
//! cleaning-tool selection as hyperparameter tuning and lets Optuna's TPE
//! sampler navigate the (detector × repair tool) space; this crate
//! provides that sampler ([`TpeSampler`]) plus [`RandomSampler`] and
//! [`GridSampler`] baselines behind an Optuna-style ask/tell [`Study`].
//!
//! ```
//! use datalens_optimize::{Direction, SearchSpace, Study, TpeSampler};
//!
//! let space = SearchSpace::new()
//!     .categorical("detector", ["sd", "iqr", "raha"])
//!     .categorical("repair", ["standard_imputer", "ml_imputer"]);
//! let mut study = Study::new(Direction::Minimize, space, Box::new(TpeSampler::new(0)));
//! study.optimize(10, |params| {
//!     // score the tool combination (here: a toy objective)
//!     if params["detector"].as_str() == Some("raha") { 1.0 } else { 2.0 }
//! });
//! assert_eq!(study.best_trial().unwrap().params["detector"].as_str(), Some("raha"));
//! ```

pub mod bandit;
pub mod sampler;
pub mod space;
pub mod study;

pub use bandit::UcbSampler;
pub use sampler::{GridSampler, RandomSampler, Sampler, TpeSampler};
pub use space::{ParamDomain, ParamValue, Params, SearchSpace};
pub use study::{Direction, Study, Trial};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::sampler::{RandomSampler, TpeSampler};
    use crate::space::SearchSpace;
    use crate::study::{Direction, Study};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every sampler keeps every trial inside the declared space, and
        /// the best-value curve is monotone under both directions.
        #[test]
        fn samplers_respect_space_and_curves_are_monotone(
            seed in any::<u64>(),
            maximize in any::<bool>(),
        ) {
            let direction = if maximize { Direction::Maximize } else { Direction::Minimize };
            let space = SearchSpace::new()
                .categorical("tool", ["a", "b", "c", "d"])
                .int("k", 1, 6)
                .float("rate", 0.0, 1.0);
            for sampler in [
                Box::new(RandomSampler::new(seed)) as Box<dyn crate::sampler::Sampler>,
                Box::new(TpeSampler::new(seed)),
            ] {
                let mut study = Study::new(direction, space.clone(), sampler);
                study.optimize(25, |p| {
                    p["rate"].as_f64().unwrap() + p["k"].as_i64().unwrap() as f64
                });
                for t in study.trials() {
                    prop_assert!(space.validate(&t.params), "{:?}", t.params);
                }
                let curve = study.best_value_curve();
                for w in curve.windows(2) {
                    if maximize {
                        prop_assert!(w[1] >= w[0]);
                    } else {
                        prop_assert!(w[1] <= w[0]);
                    }
                }
            }
        }
    }
}

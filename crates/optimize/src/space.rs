//! Search-space definition: named parameters with categorical, integer,
//! or float domains. The iterative-cleaning module's space is categorical
//! (detector × repair tool), but the optimizer is general, matching what
//! Optuna offers the paper.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A single sampled parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    Str(String),
    Int(i64),
    Float(f64),
}

impl ParamValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(f) => Some(*f),
            ParamValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// A full parameter assignment.
pub type Params = BTreeMap<String, ParamValue>;

/// The domain of one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamDomain {
    /// One of a fixed set of choices.
    Categorical(Vec<String>),
    /// Integer in `[lo, hi]` inclusive.
    Int { lo: i64, hi: i64 },
    /// Float in `[lo, hi]`; `log` samples uniformly in log-space.
    Float { lo: f64, hi: f64, log: bool },
}

impl ParamDomain {
    /// Is `v` inside this domain?
    pub fn contains(&self, v: &ParamValue) -> bool {
        match (self, v) {
            (ParamDomain::Categorical(choices), ParamValue::Str(s)) => {
                choices.iter().any(|c| c == s)
            }
            (ParamDomain::Int { lo, hi }, ParamValue::Int(i)) => (lo..=hi).contains(&i),
            (ParamDomain::Float { lo, hi, .. }, ParamValue::Float(f)) => *f >= *lo && *f <= *hi,
            _ => false,
        }
    }
}

/// An ordered collection of named parameter domains.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchSpace {
    params: Vec<(String, ParamDomain)>,
}

impl SearchSpace {
    pub fn new() -> SearchSpace {
        SearchSpace::default()
    }

    /// Add a categorical parameter (builder style).
    pub fn categorical(
        mut self,
        name: impl Into<String>,
        choices: impl IntoIterator<Item = impl Into<String>>,
    ) -> SearchSpace {
        let choices: Vec<String> = choices.into_iter().map(Into::into).collect();
        assert!(!choices.is_empty(), "categorical domain must be nonempty");
        self.params
            .push((name.into(), ParamDomain::Categorical(choices)));
        self
    }

    /// Add an integer parameter.
    pub fn int(mut self, name: impl Into<String>, lo: i64, hi: i64) -> SearchSpace {
        assert!(lo <= hi, "empty int domain");
        self.params.push((name.into(), ParamDomain::Int { lo, hi }));
        self
    }

    /// Add a float parameter.
    pub fn float(mut self, name: impl Into<String>, lo: f64, hi: f64) -> SearchSpace {
        assert!(lo < hi, "empty float domain");
        self.params
            .push((name.into(), ParamDomain::Float { lo, hi, log: false }));
        self
    }

    /// Add a log-scaled float parameter.
    pub fn log_float(mut self, name: impl Into<String>, lo: f64, hi: f64) -> SearchSpace {
        assert!(lo > 0.0 && lo < hi, "log domain requires 0 < lo < hi");
        self.params
            .push((name.into(), ParamDomain::Float { lo, hi, log: true }));
        self
    }

    pub fn params(&self) -> &[(String, ParamDomain)] {
        &self.params
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Validate a full assignment against the space.
    pub fn validate(&self, params: &Params) -> bool {
        self.params.len() == params.len()
            && self
                .params
                .iter()
                .all(|(name, domain)| params.get(name).is_some_and(|v| domain.contains(v)))
    }

    /// Total number of grid points for fully-discrete spaces; `None` when
    /// a float parameter makes the space continuous.
    pub fn cardinality(&self) -> Option<usize> {
        let mut total = 1usize;
        for (_, d) in &self.params {
            total = total.checked_mul(match d {
                ParamDomain::Categorical(c) => c.len(),
                ParamDomain::Int { lo, hi } => usize::try_from(hi - lo + 1).ok()?,
                ParamDomain::Float { .. } => return None,
            })?;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .categorical("tool", ["a", "b", "c"])
            .int("k", 1, 4)
    }

    #[test]
    fn builder_and_cardinality() {
        let s = space();
        assert_eq!(s.len(), 2);
        assert_eq!(s.cardinality(), Some(12));
        let with_float = space().float("lr", 0.0, 1.0);
        assert_eq!(with_float.cardinality(), None);
    }

    #[test]
    fn validation() {
        let s = space();
        let mut p = Params::new();
        p.insert("tool".into(), ParamValue::Str("b".into()));
        p.insert("k".into(), ParamValue::Int(2));
        assert!(s.validate(&p));
        p.insert("k".into(), ParamValue::Int(9));
        assert!(!s.validate(&p));
        p.insert("k".into(), ParamValue::Str("2".into()));
        assert!(!s.validate(&p));
        p.remove("k");
        assert!(!s.validate(&p));
    }

    #[test]
    fn domain_contains() {
        let d = ParamDomain::Float {
            lo: 0.1,
            hi: 1.0,
            log: true,
        };
        assert!(d.contains(&ParamValue::Float(0.5)));
        assert!(!d.contains(&ParamValue::Float(0.01)));
        assert!(!d.contains(&ParamValue::Int(1)));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_categorical_rejected() {
        SearchSpace::new().categorical("x", Vec::<String>::new());
    }
}

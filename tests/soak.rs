//! Chaos soak harness for the health-gated serving path.
//!
//! One real server, one adversarial client mix — slow-loris writers,
//! malformed and oversized requests, mid-job cancellations, and SSE
//! consumers that never read — driven while the job queue is pushed
//! into saturation. The harness asserts the gate's full arc over the
//! wire: `pass` at rest, `hold` (with machine-readable reason codes)
//! under saturation with shed submits answered fast, and back to
//! `pass` once the backlog drains — plus the tier-1 invariants: the
//! queue drains to zero, no stream slots leak, and the worker pool
//! still completes a fresh job after the storm.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datalens::jobs::rest::{job_service_router, CreateSessionRequest, CreateSessionResponse};
use datalens::jobs::{JobService, JobServiceConfig, JobSpec, JobStep};
use datalens_obs::Registry;
use datalens_rest::{metrics_router, Client, Server, ServerConfig};

const MAX_STREAMS: usize = 2;
const QUEUE_DEPTH: usize = 4;

/// Small service + tight server limits so every failure mode is
/// reachable in test time: depth-4 queue, 2-slot stream lane, 1s read
/// timeout (reaps the loris), 200ms stream write deadline (reaps the
/// non-reading SSE consumer), 64 KiB body cap (rejects the oversized
/// upload without buffering it).
fn start_soak_target() -> (Arc<JobService>, Arc<Registry>, Server) {
    let registry = Arc::new(Registry::new());
    let service = Arc::new(
        JobService::new(JobServiceConfig {
            workers: 2,
            queue_depth: QUEUE_DEPTH,
            metrics: Some(Arc::clone(&registry)),
            ..JobServiceConfig::default()
        })
        .unwrap(),
    );
    let router =
        job_service_router(Arc::clone(&service)).merge(metrics_router(Arc::clone(&registry)));
    let server = Server::start_with(
        router,
        ServerConfig {
            workers: 4,
            max_streams: MAX_STREAMS,
            read_timeout: Some(Duration::from_secs(1)),
            keep_alive_timeout: Some(Duration::from_millis(200)),
            heartbeat_interval: Some(Duration::from_millis(50)),
            stream_write_timeout: Some(Duration::from_millis(200)),
            max_body: 64 * 1024,
            metrics: Some(Arc::clone(&registry)),
            health_gate: Some(service.health_gate()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (service, registry, server)
}

fn open_session(client: &Client) -> u64 {
    let resp: CreateSessionResponse = client
        .post_json(
            "/sessions",
            &CreateSessionRequest {
                file_name: Some("soak.csv".to_string()),
                csv: Some("a,b\n1,x\n2,y\n,\n".to_string()),
                ..CreateSessionRequest::default()
            },
        )
        .unwrap();
    resp.session.session_id
}

fn health(client: &Client) -> (u16, serde_json::Value) {
    let resp = client.get("/health").unwrap();
    let body: serde_json::Value = resp.json_body().unwrap();
    (resp.status, body)
}

fn reasons_of(body: &serde_json::Value) -> Vec<String> {
    body["reasons"]
        .as_array()
        .map(|rs| {
            rs.iter()
                .filter_map(|r| r.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

/// Poll `/health` until the verdict matches, failing past the deadline.
fn wait_for_verdict(client: &Client, want: &str, within: Duration) -> serde_json::Value {
    let deadline = Instant::now() + within;
    loop {
        let (_, body) = health(client);
        if body["verdict"] == want {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "gate never reached {want}: {body:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Pin `session` with one long cooperative job — same-session jobs are
/// serialised, so no pop can shrink the backlog while it runs — then
/// fill the bounded queue behind it until the service sheds. Returns
/// every accepted job id (pinner first) for the later drain.
fn saturate_queue(client: &Client, session: u64) -> Vec<u64> {
    let pin = serde_json::to_vec(&JobSpec::new(vec![JobStep::Sleep { ms: 30_000 }])).unwrap();
    let resp = client
        .post(&format!("/sessions/{session}/jobs"), pin)
        .unwrap();
    assert_eq!(resp.status, 202);
    let body: serde_json::Value = resp.json_body().unwrap();
    let pinner = body["jobId"].as_u64().unwrap();
    // Wait for a worker to claim it: filling before the claim would
    // let that very pop blip the fill ratio back under the threshold.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status: serde_json::Value = client
            .get(&format!("/jobs/{pinner}"))
            .unwrap()
            .json_body()
            .unwrap();
        if status["state"] == "Running" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pinner never started: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut ids = vec![pinner];
    let filler = serde_json::to_vec(&JobSpec::new(vec![JobStep::Sleep { ms: 1_000 }])).unwrap();
    for _ in 0..32 {
        let resp = client
            .post(&format!("/sessions/{session}/jobs"), filler.clone())
            .unwrap();
        match resp.status {
            202 => {
                let body: serde_json::Value = resp.json_body().unwrap();
                ids.push(body["jobId"].as_u64().unwrap());
            }
            429 => return ids,
            other => panic!("unexpected submit status {other}"),
        }
    }
    panic!("queue never saturated after 32 submits");
}

/// A client that opens a connection, dribbles half a request header,
/// and stalls. The server's read timeout must reap it; it must never
/// wedge a worker past that.
fn slow_loris(addr: std::net::SocketAddr) {
    let Ok(mut s) = TcpStream::connect(addr) else {
        return;
    };
    let _ = s.write_all(b"POST /sessions HTTP/1.1\r\nhost: t\r\ncontent-le");
    let _ = s.flush();
    // Hold the half-written request well past the server's read timeout.
    std::thread::sleep(Duration::from_millis(1_500));
    let _ = s.write_all(b"ngth: 5\r\n\r\nhello");
}

/// An SSE subscriber that sends its request and then never reads a
/// byte: heartbeats back up in the socket and the stream write
/// deadline must reap it, freeing the lane slot.
fn non_reading_sse(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET /alerts/events HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    s.flush().unwrap();
    s
}

#[test]
fn chaos_soak_walks_pass_hold_pass_with_invariants_intact() {
    let (_service, registry, server) = start_soak_target();
    let addr = server.addr();
    let client = Client::new(addr).with_timeout(Duration::from_secs(30));

    // ── Phase 0: at rest the gate passes. ───────────────────────────
    let (status, body) = health(&client);
    assert_eq!(status, 200);
    assert_eq!(body["verdict"], "pass", "{body:?}");
    assert!(reasons_of(&body).is_empty());

    let session = open_session(&client);

    // ── Phase 1: chaos mix. ─────────────────────────────────────────
    // Slow-loris writers, malformed and oversized requests, SSE
    // consumers that never read, and cancelled jobs — all at once.
    let mut chaos = Vec::new();
    for _ in 0..3 {
        chaos.push(std::thread::spawn(move || slow_loris(addr)));
    }
    // One of the two lane slots wedged (50% fill stays under the
    // stream hold ratio — the queue must be what trips the gate).
    let wedged_sse: Vec<TcpStream> = (0..1).map(|_| non_reading_sse(addr)).collect();

    // Malformed framing: negative / junk / duplicate content-length.
    for cl in [
        "content-length: -2\r\n",
        "content-length: 9x\r\n",
        "content-length: 2\r\ncontent-length: 3\r\n",
    ] {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(
            s,
            "POST /sessions HTTP/1.1\r\nhost: t\r\nconnection: close\r\n{cl}\r\n{{}}"
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = String::from_utf8_lossy(&buf);
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    }

    // Oversized: a declared body over the 64 KiB cap is refused with
    // 413 before the server buffers a byte of it.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(
            s,
            "POST /sessions HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
            1024 * 1024
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = String::from_utf8_lossy(&buf);
        assert!(head.starts_with("HTTP/1.1 413"), "{head}");
    }

    // Mid-job cancellations: submit then immediately cancel.
    for _ in 0..4 {
        let spec = serde_json::to_vec(&JobSpec::new(vec![JobStep::Sleep { ms: 200 }])).unwrap();
        let resp = client
            .post(&format!("/sessions/{session}/jobs"), spec)
            .unwrap();
        if resp.status == 202 {
            let body: serde_json::Value = resp.json_body().unwrap();
            let id = body["jobId"].as_u64().unwrap();
            client.delete(&format!("/jobs/{id}")).unwrap();
        }
    }

    // The service keeps answering health probes through the chaos.
    let (status, _) = health(&client);
    assert!(status == 200 || status == 503);

    // ── Phase 2: saturate the queue until the gate holds. ───────────
    // Let the phase-1 leftovers drain first so no imminent worker pop
    // can blip the verdict mid-assertion…
    wait_for_verdict(&client, "pass", Duration::from_secs(30));

    // …then pin the session with one long job (same-session jobs are
    // serialised, so nothing can be popped while it runs) and fill the
    // depth-4 queue behind it: fill ratio 1.0 ⇒ a *stable* `hold`.
    let pinned = saturate_queue(&client, session);

    let held = wait_for_verdict(&client, "hold", Duration::from_secs(10));
    let reasons = reasons_of(&held);
    assert!(
        reasons.iter().any(|r| r == "queue_backpressure_applied"),
        "hold must name the saturated queue: {reasons:?}"
    );
    // A holding gate answers /health with 503 + Retry-After, so
    // `curl -f` and load balancers read it without parsing JSON.
    let resp = client.get("/health").unwrap();
    assert_eq!(resp.status, 503);
    let retry: u64 = resp
        .headers
        .get("retry-after")
        .expect("503 /health carries retry-after")
        .parse()
        .unwrap();
    assert!(retry >= 1);

    // While holding, the stream lane refuses new subscriptions…
    let refused = client.sse("/alerts/events").unwrap();
    assert_eq!(refused.status, 429, "gate-held lane must refuse streams");
    assert!(!refused.is_streaming());
    assert!(refused.headers.contains_key("retry-after"));

    // …and submits shed fast: time-to-429 over a warm connection must
    // stay in single-digit milliseconds even at p99, because the shed
    // happens before the queue lock.
    let spec = serde_json::to_vec(&JobSpec::new(vec![JobStep::Sleep { ms: 1_000 }])).unwrap();
    let mut conn = client.connect().unwrap();
    let mut shed_samples: Vec<Duration> = Vec::with_capacity(64);
    for _ in 0..64 {
        let started = Instant::now();
        let resp = conn
            .post(&format!("/sessions/{session}/jobs"), spec.clone())
            .unwrap();
        let elapsed = started.elapsed();
        assert_eq!(resp.status, 429, "gate must shed while holding");
        assert!(resp.headers.contains_key("retry-after"));
        shed_samples.push(elapsed);
    }
    drop(conn);
    shed_samples.sort();
    let p50 = shed_samples[shed_samples.len() / 2];
    let p99 = shed_samples[shed_samples.len() * 99 / 100];
    assert!(
        p99 < Duration::from_millis(10),
        "shed latency p50={p50:?} p99={p99:?}, want p99 < 10ms"
    );

    // ── Phase 3: drain and recover. ─────────────────────────────────
    for id in &pinned {
        client.delete(&format!("/jobs/{id}")).unwrap();
    }
    let recovered = wait_for_verdict(&client, "pass", Duration::from_secs(30));
    assert!(reasons_of(&recovered).is_empty(), "{recovered:?}");
    let resp = client.get("/health").unwrap();
    assert_eq!(resp.status, 200, "recovered gate answers 200 again");

    // Tier-1 invariants after the storm.
    let deadline = Instant::now() + Duration::from_secs(30);
    while registry.gauge("jobs_queue_depth").get() != 0 {
        assert!(Instant::now() < deadline, "queue never drained to 0");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(wedged_sse);
    let deadline = Instant::now() + Duration::from_secs(30);
    while registry.gauge("sse_streams_active").get() != 0 {
        assert!(Instant::now() < deadline, "stream slots leaked");
        std::thread::sleep(Duration::from_millis(20));
    }
    for t in chaos {
        t.join().unwrap();
    }

    // No stuck workers: a fresh job still runs to completion, and a
    // fresh stream subscription is accepted again.
    let spec = serde_json::to_vec(&JobSpec::detect(&["mv_detector"])).unwrap();
    let resp = client
        .post(&format!("/sessions/{session}/jobs"), spec)
        .unwrap();
    assert_eq!(resp.status, 202);
    let body: serde_json::Value = resp.json_body().unwrap();
    let job_id = body["jobId"].as_u64().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status: serde_json::Value = client
            .get(&format!("/jobs/{job_id}"))
            .unwrap()
            .json_body()
            .unwrap();
        if status["state"] == "Done" {
            break;
        }
        assert!(
            !matches!(status["state"].as_str(), Some("Failed" | "Cancelled")),
            "post-storm job failed: {status:?}"
        );
        assert!(Instant::now() < deadline, "post-storm job never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    let stream = client.sse("/alerts/events").unwrap();
    assert_eq!(stream.status, 200, "lane accepts subscribers again");
    assert!(stream.is_streaming());
}

/// The gate transition counters tell the story afterwards: at least
/// one transition into `hold` and one back into `pass` are recorded on
/// the shared registry (the dashboard's post-mortem evidence).
#[test]
fn gate_transitions_are_counted_on_the_registry() {
    let (service, registry, server) = start_soak_target();
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(30));
    let session = open_session(&client);

    let pinned = saturate_queue(&client, session);
    wait_for_verdict(&client, "hold", Duration::from_secs(10));
    assert_eq!(registry.gauge("health_verdict").get(), 2);
    for id in &pinned {
        client.delete(&format!("/jobs/{id}")).unwrap();
    }
    wait_for_verdict(&client, "pass", Duration::from_secs(30));
    assert_eq!(registry.gauge("health_verdict").get(), 0);
    assert!(
        registry
            .counter("health_transitions_total{to=\"hold\"}")
            .get()
            >= 1
    );
    assert!(
        registry
            .counter("health_transitions_total{to=\"pass\"}")
            .get()
            >= 1
    );
    drop(service);
}

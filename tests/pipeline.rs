//! End-to-end integration test: the complete paper pipeline on a
//! persisted workspace — ingest → profile → rules → detect → repair →
//! version → track → DataSheet → replay.

use std::path::PathBuf;

use datalens::controller::{DashboardConfig, DashboardController};
use datalens::DataSheet;
use datalens_datasets::registry;
use datalens_delta::DeltaTable;

fn workspace(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("datalens_it_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

#[test]
fn full_pipeline_with_persistence_and_reproduction() {
    let ws = workspace("full");
    let mut dash = DashboardController::new(DashboardConfig {
        workspace_dir: Some(ws.clone()),
        seed: 42,
        ..Default::default()
    })
    .unwrap();

    // 1. Ingest the preloaded dirty NASA dataset.
    let dd = registry::dirty("nasa", 42).unwrap();
    dash.ingest_dirty_dataset(&dd, "nasa").unwrap();

    // 2. Profile: the injected nulls must be visible.
    let profile = dash.profile().unwrap();
    assert!(profile.table.missing_cells > 0);
    assert_eq!(profile.columns.len(), 6);

    // 3. Detection across several tools, plus a user tag.
    dash.tag_value("99999").unwrap();
    let n = dash
        .run_detection(&["sd", "iqr", "mv_detector", "fahes"])
        .unwrap();
    assert!(n > 0);

    // Detection quality against ground truth: union recall must beat any
    // single tool's.
    let merged = dash.detections().unwrap();
    let union_score = dd.score_detections(&merged.union);
    for det in &merged.per_tool {
        let s = dd.score_detections(&det.cells);
        assert!(
            union_score.recall >= s.recall - 1e-9,
            "union recall {} below {} ({})",
            union_score.recall,
            s.recall,
            det.tool
        );
    }
    assert!(union_score.recall > 0.3, "recall {:.3}", union_score.recall);

    // 4. Repair with the ML imputer.
    let repaired_cells = dash.repair("ml_imputer").unwrap();
    assert!(repaired_cells > 0);
    assert_eq!(dash.repaired_table().unwrap().null_count(), 0);

    // 5. Versioning: v0 = dirty, v1 = repaired, both loadable.
    let sheet = dash.generate_datasheet().unwrap();
    assert_eq!(sheet.detect_version, Some(0));
    assert_eq!(sheet.repaired_version, Some(1));
    let delta_root = ws.join("datasets").join("nasa").join("delta");
    let delta = DeltaTable::open(&delta_root).unwrap();
    let v0 = delta.load_version(0).unwrap();
    assert_eq!(v0.shape(), dd.dirty.shape());
    assert!(v0.null_count() > 0);
    let v1 = delta.load_version(1).unwrap();
    assert_eq!(v1.null_count(), 0);

    // 6. Tracking: Detection and Repair experiments exist with runs.
    let store = dash.tracking().unwrap();
    let exps = store.list_experiments().unwrap();
    let names: Vec<&str> = exps.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"Detection"));
    assert!(names.contains(&"Repair"));

    // 7. DataSheet: save, reload, replay on a fresh controller.
    let sheet_path = ws.join("nasa_datasheet.json");
    sheet.save(&sheet_path).unwrap();
    let reloaded = DataSheet::load(&sheet_path).unwrap();
    assert_eq!(reloaded, sheet);

    let mut dash2 = DashboardController::new(DashboardConfig {
        workspace_dir: None,
        seed: 42,
        ..Default::default()
    })
    .unwrap();
    dash2.ingest_dirty_dataset(&dd, "nasa").unwrap();
    dash2.replay_datasheet(&reloaded).unwrap();
    assert_eq!(
        dash2.detections().unwrap().total(),
        dash.detections().unwrap().total()
    );
    assert_eq!(
        dash2.repaired_table().unwrap(),
        dash.repaired_table().unwrap()
    );

    std::fs::remove_dir_all(&ws).ok();
}

#[test]
fn repair_improves_downstream_model() {
    use datalens::iterative::train_and_score;
    use datalens_datasets::Task;

    let dd = registry::dirty("nasa", 7).unwrap();
    let mut dash = DashboardController::new(DashboardConfig::default()).unwrap();
    dash.ingest_dirty_dataset(&dd, "nasa").unwrap();
    dash.run_detection(&["sd", "iqr", "mv_detector", "fahes"])
        .unwrap();
    dash.repair("ml_imputer").unwrap();

    let target = datalens_datasets::nasa::TARGET;
    let dirty_mse = train_and_score(&dd.dirty, target, Task::Regression, 0.25, 7).unwrap();
    let repaired_mse = train_and_score(
        dash.repaired_table().unwrap(),
        target,
        Task::Regression,
        0.25,
        7,
    )
    .unwrap();
    let clean_mse = train_and_score(&dd.clean, target, Task::Regression, 0.25, 7).unwrap();
    assert!(
        repaired_mse < dirty_mse,
        "repaired {repaired_mse:.2} vs dirty {dirty_mse:.2}"
    );
    assert!(clean_mse <= dirty_mse);
}

#[test]
fn hospital_pipeline_rule_and_knowledge_based() {
    // The FD-dense categorical dataset: rule-based (NADEEF) and
    // knowledge-based (KATARA) detection carry the load; statistical
    // outlier detectors are nearly blind here.
    let dd = registry::dirty("hospital", 8).unwrap();
    let mut dash = DashboardController::new(DashboardConfig::default()).unwrap();
    dash.ingest_dirty_dataset(&dd, "hospital").unwrap();

    dash.discover_rules_approx(0.15).unwrap();
    let rules: Vec<String> = dash
        .rules()
        .unwrap()
        .rules()
        .iter()
        .map(|r| r.fd.to_string())
        .collect();
    assert!(
        rules.iter().any(|r| r == "[measure_code] -> measure_name"),
        "rules: {rules:?}"
    );

    dash.run_detection(&["nadeef", "katara", "mv_detector", "fahes"])
        .unwrap();
    let det = dash.detections().unwrap();
    let score = dd.score_detections(&det.union);
    assert!(score.true_positives > 0, "nothing found");
    // NADEEF specifically must contribute on this dataset.
    let nadeef = det.per_tool.iter().find(|d| d.tool == "nadeef").unwrap();
    assert!(!nadeef.is_empty());

    // HoloClean repair: where FD context exists (measure_name is the
    // dependent of measure_code), detected corruptions are restored to the
    // *exact* clean value by cohort voting.
    let detected: std::collections::BTreeSet<_> = det.union.iter().copied().collect();
    dash.repair("holoclean_repairer").unwrap();
    let repaired = dash.repaired_table().unwrap();
    let mn_col = dd.clean.column_index("measure_name").unwrap();
    let mut fixable = 0usize;
    let mut fixed = 0usize;
    for &cell in dd.errors.keys() {
        if cell.col == mn_col && detected.contains(&cell) {
            fixable += 1;
            if repaired.get(cell).unwrap() == dd.clean.get(cell).unwrap() {
                fixed += 1;
            }
        }
    }
    assert!(fixable > 0, "no detected measure_name corruptions to test");
    assert!(
        fixed * 10 >= fixable * 7,
        "only {fixed}/{fixable} measure_name cells restored exactly"
    );
}

#[test]
fn beers_pipeline_with_fd_rules() {
    let dd = registry::dirty("beers", 3).unwrap();
    let mut dash = DashboardController::new(DashboardConfig::default()).unwrap();
    dash.ingest_dirty_dataset(&dd, "beers").unwrap();

    // The generator builds brewery → city/state FDs; approximate mining
    // must surface them through the injected violations (~15% of city
    // cells are corrupted across the five injection channels, so the g3
    // tolerance must sit above that).
    dash.discover_rules_approx(0.25).unwrap();
    let rules: Vec<String> = dash
        .rules()
        .unwrap()
        .rules()
        .iter()
        .map(|r| r.fd.to_string())
        .collect();
    assert!(
        rules.iter().any(|r| r == "[brewery] -> city"),
        "rules: {rules:?}"
    );

    // NADEEF must catch some injected FD violations.
    dash.run_detection(&["nadeef"]).unwrap();
    let det = dash.detections().unwrap();
    let score = dd.score_detections(&det.union);
    assert!(score.true_positives > 0);

    // HoloClean repair fixes FD violations using cohort voting.
    dash.repair("holoclean_repairer").unwrap();
    let repaired = dash.repaired_table().unwrap();
    let fixed = dd.repair_accuracy(repaired);
    assert!(fixed > 0.0);
}

//! Failure-injection integration tests: corrupt inputs must surface as
//! typed errors, never as panics or silent misbehaviour.

use datalens::controller::{DashboardConfig, DashboardController};
use datalens::{DataLensError, DataSheet};
use datalens_delta::{DeltaError, DeltaTable};
use datalens_table::csv::{read_csv_str, CsvOptions};
use datalens_table::{Column, Table, TableError};

#[test]
fn corrupt_csv_inputs_error_cleanly() {
    // Ragged row.
    assert!(matches!(
        read_csv_str("t", "a,b\n1,2\n3\n", &CsvOptions::default()),
        Err(TableError::Csv { line: 3, .. })
    ));
    // Unclosed quote.
    assert!(matches!(
        read_csv_str("t", "a\n\"broken\n", &CsvOptions::default()),
        Err(TableError::Csv { .. })
    ));
    // Via the controller, too.
    let mut dash = DashboardController::new(DashboardConfig::default()).unwrap();
    assert!(matches!(
        dash.ingest_csv_text("bad.csv", "a,b\n1\n"),
        Err(DataLensError::Table(_))
    ));
}

#[test]
fn truncated_delta_log_detected() {
    let root = std::env::temp_dir().join(format!("datalens_fi_delta_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let t = Table::new("t", vec![Column::from_i64("x", [Some(1)])]).unwrap();
    let dt = DeltaTable::create(&root, &t, "CREATE").unwrap();
    dt.commit(&t, "W").unwrap();
    dt.commit(&t, "W").unwrap();

    // Remove the middle commit: the log now has a gap.
    std::fs::remove_file(root.join("_delta_log").join(format!("{:020}.json", 1))).unwrap();
    assert!(matches!(
        DeltaTable::open(&root),
        Err(DeltaError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn garbage_in_delta_log_detected() {
    let root = std::env::temp_dir().join(format!("datalens_fi_garbage_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let t = Table::new("t", vec![Column::from_i64("x", [Some(1)])]).unwrap();
    let dt = DeltaTable::create(&root, &t, "CREATE").unwrap();
    std::fs::write(
        root.join("_delta_log").join(format!("{:020}.json", 0)),
        "{\"not\": \"an action\"}\n",
    )
    .unwrap();
    assert!(dt.load_version(0).is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn invalid_datasheets_rejected() {
    assert!(matches!(
        DataSheet::from_json("not json at all"),
        Err(DataLensError::DataSheet(_))
    ));
    assert!(matches!(
        DataSheet::from_json("{\"datasheet_version\": 1}"),
        Err(DataLensError::DataSheet(_))
    ));
    // Missing file.
    assert!(matches!(
        DataSheet::load("/nonexistent/sheet.json"),
        Err(DataLensError::Io(_))
    ));
}

#[test]
fn replaying_a_sheet_with_unknown_tools_errors() {
    let mut dash = DashboardController::new(DashboardConfig::default()).unwrap();
    dash.ingest_csv_text("d.csv", "a\n1\n2\n").unwrap();
    let mut sheet = dash.generate_datasheet().unwrap();
    sheet.detection_tools = vec!["imaginary_tool".into()];
    assert!(matches!(
        dash.replay_datasheet(&sheet),
        Err(DataLensError::Unknown(_))
    ));
}

#[test]
fn conflicting_user_labels_resolve_by_propagation_tie_rules() {
    // Two users disagree on cells in the same RAHA cluster: ties leave
    // cells unlabeled rather than guessing (documented in labelprop).
    use datalens_ml::labelprop::propagate_in_clusters;
    let assignments = vec![0, 0, 0, 0];
    let labels = vec![Some(true), Some(false), None, None];
    let (out, newly) = propagate_in_clusters(&assignments, &labels);
    assert_eq!(newly, 0);
    assert_eq!(out[2], None);
    assert_eq!(out[3], None);
}

#[test]
fn detectors_tolerate_degenerate_tables() {
    use datalens_detect::{detector_by_name, DetectionContext, DETECTOR_NAMES};
    let ctx = DetectionContext::default();
    // Single row, all-null column, constant column, empty-but-typed table.
    let tables = vec![
        Table::new("one", vec![Column::from_i64("x", [Some(1)])]).unwrap(),
        Table::new("nulls", vec![Column::from_f64("x", [None, None, None])]).unwrap(),
        Table::new(
            "constant",
            vec![Column::from_str_vals("s", vec![Some("k"); 20])],
        )
        .unwrap(),
        Table::empty(
            "empty",
            &datalens_table::Schema::from_pairs([("a", datalens_table::DataType::Int)]).unwrap(),
        ),
    ];
    for table in &tables {
        for name in DETECTOR_NAMES {
            if name == "raha" {
                continue; // interactive driver has its own budget loop
            }
            let det = detector_by_name(name).unwrap();
            let d = det.detect(table, &ctx); // must not panic
            for c in &d.cells {
                assert!(c.row < table.n_rows());
            }
        }
    }
}

#[test]
fn repairers_tolerate_degenerate_tables() {
    use datalens_repair::{repairer_by_name, RepairContext, REPAIRER_NAMES};
    let ctx = RepairContext::default();
    let t = Table::new(
        "degenerate",
        vec![
            Column::from_f64("all_null", [None, None]),
            Column::from_str_vals("s", [Some("a"), None]),
        ],
    )
    .unwrap();
    for name in REPAIRER_NAMES {
        let rep = repairer_by_name(name).unwrap();
        let result = rep.repair(&t, &[], &ctx); // must not panic
        assert_eq!(result.table.shape(), t.shape());
    }
}

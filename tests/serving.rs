//! Integration tests for the hardened serving path: the bounded
//! keep-alive connection pool in front of the real job service, the
//! strict Content-Length protocol checks over the wire, route
//! specificity across merged routers, and the `/metrics` endpoint
//! after actual job traffic.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datalens::jobs::rest::{job_service_router, CreateSessionRequest, CreateSessionResponse};
use datalens::jobs::{JobService, JobServiceConfig, JobSpec, JobStep};
use datalens_obs::Registry;
use datalens_rest::{
    metrics_router, Client, Method, Request, Response, Router, Server, ServerConfig, StreamChunk,
    StreamSource,
};

/// A job service with `workers` pipeline workers, shared metrics
/// registry, served over the given HTTP pool configuration.
fn start_service(workers: usize, config: ServerConfig) -> (Arc<JobService>, Arc<Registry>, Server) {
    let registry = Arc::new(Registry::new());
    let service = Arc::new(
        JobService::new(JobServiceConfig {
            workers,
            queue_depth: 64,
            metrics: Some(Arc::clone(&registry)),
            ..JobServiceConfig::default()
        })
        .unwrap(),
    );
    let router =
        job_service_router(Arc::clone(&service)).merge(metrics_router(Arc::clone(&registry)));
    let server = Server::start_with(
        router,
        ServerConfig {
            metrics: Some(Arc::clone(&registry)),
            ..config
        },
    )
    .unwrap();
    (service, registry, server)
}

fn open_session(client: &Client) -> u64 {
    let resp: CreateSessionResponse = client
        .post_json(
            "/sessions",
            &CreateSessionRequest {
                file_name: Some("serve.csv".to_string()),
                csv: Some("a,b\n1,x\n2,y\n,\n".to_string()),
                ..CreateSessionRequest::default()
            },
        )
        .unwrap();
    resp.session.session_id
}

/// One persistent connection drives the whole submit/poll/result cycle:
/// the dashboard's hot path never pays per-request TCP setup.
#[test]
fn keep_alive_connection_serves_the_whole_job_cycle() {
    let (_service, _registry, server) = start_service(2, ServerConfig::default());
    let client = Client::new(server.addr());
    let session = open_session(&client);

    let mut conn = client.connect().unwrap();
    for _ in 0..3 {
        let spec = serde_json::to_vec(&JobSpec::detect(&["mv_detector"])).unwrap();
        let resp = conn
            .post(&format!("/sessions/{session}/jobs"), spec)
            .unwrap();
        assert_eq!(resp.status, 202);
        let submitted: serde_json::Value = resp.json_body().unwrap();
        let job_id = submitted["jobId"].as_u64().unwrap();

        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let resp = conn.get(&format!("/jobs/{job_id}")).unwrap();
            assert_eq!(resp.status, 200);
            let status: serde_json::Value = resp.json_body().unwrap();
            match status["state"].as_str().unwrap_or_default() {
                "Done" => break,
                "Failed" | "Cancelled" => panic!("job failed: {status:?}"),
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
            assert!(Instant::now() < deadline, "job never finished");
        }
        let resp = conn.get(&format!("/jobs/{job_id}/result")).unwrap();
        assert_eq!(resp.status, 200);
    }
}

/// Raw-socket request with hand-written headers; returns the status the
/// server answers with (it must 400 and close on protocol violations
/// instead of misparsing the length).
fn raw_request_status(addr: std::net::SocketAddr, target: &str, cl_lines: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n{cl_lines}\r\n{{}}"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    let head = String::from_utf8_lossy(&buf);
    head.split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status")
}

#[test]
fn malformed_and_duplicate_content_length_get_400_over_the_wire() {
    let (_service, _registry, server) = start_service(1, ServerConfig::default());
    let addr = server.addr();

    // Regression: "-2" and "2x" used to parse as 0 → empty-body dispatch.
    assert_eq!(
        raw_request_status(addr, "/sessions", "content-length: -2\r\n"),
        400
    );
    assert_eq!(
        raw_request_status(addr, "/sessions", "content-length: 2x\r\n"),
        400
    );
    assert_eq!(
        raw_request_status(
            addr,
            "/sessions",
            "content-length: 2\r\ncontent-length: 3\r\n"
        ),
        400
    );
    // A well-formed length still dispatches (unknown job → 404, not a
    // protocol error).
    assert_eq!(
        raw_request_status(addr, "/jobs/999/whatever", "content-length: 2\r\n"),
        404
    );
}

/// `/metrics` (a literal route) must win over `/{param}`-style routes
/// no matter which router was merged first.
#[test]
fn literal_metrics_route_beats_param_route_after_merge() {
    let registry = Arc::new(Registry::new());
    registry.counter("probe_total").inc();
    // The param route is registered BEFORE the literal /metrics route.
    let param_first = Router::new()
        .route(Method::Get, "/{page}", |_req, params| {
            Response::error(410, &format!("param:{}", &params["page"]))
        })
        .merge(metrics_router(Arc::clone(&registry)));
    let server = Server::start(param_first).unwrap();
    let client = Client::new(server.addr());

    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200, "literal route must win");
    let body: serde_json::Value = resp.json_body().unwrap();
    assert_eq!(body["counters"]["probe_total"], 1);
    // Other paths still fall through to the param route.
    assert_eq!(client.get("/anything").unwrap().status, 410);
}

/// 64 clients hammer a server whose pool has 4 workers: the number of
/// concurrently served connections stays bounded by the pool size, and
/// every client is eventually answered (accept backpressure, no drops).
#[test]
fn sixty_four_clients_are_bounded_by_the_worker_pool() {
    const CLIENTS: usize = 64;
    const WORKERS: usize = 4;

    let in_flight = Arc::new(AtomicUsize::new(0));
    let high_water = Arc::new(AtomicUsize::new(0));
    let (fly, high) = (Arc::clone(&in_flight), Arc::clone(&high_water));
    let router = Router::new().route(Method::Get, "/work", move |_req, _params| {
        let now = fly.fetch_add(1, Ordering::SeqCst) + 1;
        high.fetch_max(now, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(5));
        fly.fetch_sub(1, Ordering::SeqCst);
        Response::new(200, b"ok".to_vec())
    });
    let server = Server::start_with(
        router,
        ServerConfig {
            workers: WORKERS,
            accept_backlog: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let client = Client::new(addr).with_timeout(Duration::from_secs(60));
                let resp = client.get("/work").unwrap();
                assert_eq!(resp.status, 200);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let peak = high_water.load(Ordering::SeqCst);
    assert!(
        peak <= WORKERS,
        "{peak} connections in flight, pool is {WORKERS}"
    );
    assert!(peak > 0);
}

/// After real traffic, `/metrics` reports per-route request counters and
/// latency histograms, the job queue gauges, and engine stage timings —
/// in both JSON and Prometheus text formats.
#[test]
fn metrics_endpoint_reflects_job_traffic_in_both_formats() {
    let (_service, _registry, server) = start_service(2, ServerConfig::default());
    let client = Client::new(server.addr());
    let session = open_session(&client);

    let spec = serde_json::to_vec(&JobSpec::new(vec![
        JobStep::Detect {
            tools: vec!["mv_detector".into()],
        },
        JobStep::Repair {
            tool: "standard_imputer".into(),
        },
    ]))
    .unwrap();
    let resp = client
        .post(&format!("/sessions/{session}/jobs"), spec)
        .unwrap();
    assert_eq!(resp.status, 202);
    let submitted: serde_json::Value = resp.json_body().unwrap();
    let job_id = submitted["jobId"].as_u64().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status: serde_json::Value = client
            .get(&format!("/jobs/{job_id}"))
            .unwrap()
            .json_body()
            .unwrap();
        if status["state"] == "Done" {
            break;
        }
        assert!(
            !matches!(status["state"].as_str(), Some("Failed" | "Cancelled")),
            "job failed: {status:?}"
        );
        assert!(Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(2));
    }

    // JSON view: route counters keyed by pattern (not concrete path),
    // queue gauges, and per-stage engine histograms.
    let json: serde_json::Value = client.get("/metrics").unwrap().json_body().unwrap();
    let counters = &json["counters"];
    assert_eq!(
        counters
            ["http_requests_total{route=\"/sessions/{id}/jobs\",method=\"POST\",status=\"202\"}"],
        1
    );
    assert!(
        counters["http_requests_total{route=\"/jobs/{id}\",method=\"GET\",status=\"200\"}"]
            .as_u64()
            .unwrap()
            >= 1
    );
    let histograms = &json["histograms"];
    assert!(
        histograms["http_request_ms{route=\"/jobs/{id}\"}"]["count"]
            .as_u64()
            .unwrap()
            >= 1
    );
    assert_eq!(counters["jobs_submitted_total"], 1);
    assert_eq!(counters["jobs_state_total{state=\"done\"}"], 1);
    assert_eq!(json["gauges"]["jobs_queue_depth"], 0);
    assert!(histograms["jobs_queue_wait_ms"]["count"].as_u64().unwrap() >= 1);
    for stage in ["detect", "repair"] {
        assert!(
            histograms[format!("engine_stage_ms{{stage=\"{stage}\"}}").as_str()]["count"]
                .as_u64()
                .unwrap()
                >= 1,
            "missing engine stage timing for {stage}"
        );
    }

    // Prometheus text view of the same registry.
    let resp = client.get("/metrics?format=prometheus").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers.get("content-type").map(String::as_str),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(resp.body_bytes().to_vec()).unwrap();
    assert!(text.contains("# TYPE http_requests_total counter"));
    assert!(text.contains("http_request_ms_bucket"));
    assert!(text.contains("jobs_queue_depth 0"));
    assert!(text.contains("engine_stage_ms_sum{stage=\"detect\"}"));

    // The metrics scrapes themselves show up on the next scrape.
    let json: serde_json::Value = client.get("/metrics").unwrap().json_body().unwrap();
    assert!(
        json["counters"]["http_requests_total{route=\"/metrics\",method=\"GET\",status=\"200\"}"]
            .as_u64()
            .unwrap()
            >= 2
    );
}

/// Poll a gauge until it reaches `want` (streams are reaped
/// asynchronously by their pump threads, so teardown is eventually
/// consistent).
fn wait_for_gauge(registry: &Registry, name: &str, want: i64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while registry.gauge(name).get() != want {
        assert!(
            Instant::now() < deadline,
            "{name} never reached {want} (at {})",
            registry.gauge(name).get()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The tentpole contract: one GET streams the job's whole lifecycle —
/// `plan`, per-stage `progress`, then the terminal `result` — and a
/// late subscriber replaying the log sees byte-identical payloads.
#[test]
fn sse_job_stream_replays_plan_progress_result_bit_identically() {
    let (_service, registry, server) = start_service(2, ServerConfig::default());
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(60));
    let session = open_session(&client);

    let spec = serde_json::to_vec(&JobSpec::profile()).unwrap();
    let resp = client
        .post(&format!("/sessions/{session}/jobs"), spec)
        .unwrap();
    assert_eq!(resp.status, 202);
    let submitted: serde_json::Value = resp.json_body().unwrap();
    let job_id = submitted["jobId"].as_u64().unwrap();

    // Live subscriber: attached (possibly) before the job finishes.
    let mut live = client.sse(&format!("/jobs/{job_id}/events")).unwrap();
    assert_eq!(live.status, 200);
    assert!(live.is_streaming());
    assert_eq!(
        live.headers.get("content-type").map(String::as_str),
        Some("text/event-stream")
    );
    let live_events = live.collect_events().unwrap();

    // Replay subscriber: attached after the job is terminal.
    let mut replay = client.sse(&format!("/jobs/{job_id}/events")).unwrap();
    let replay_events = replay.collect_events().unwrap();

    assert_eq!(live_events, replay_events, "replay must be bit-identical");
    assert_eq!(live_events.first().map(|e| e.event.as_str()), Some("plan"));
    assert!(live_events.iter().any(|e| e.event == "progress"));
    assert_eq!(live_events.last().map(|e| e.event.as_str()), Some("result"));
    // Event ids carry the monotonic per-job sequence.
    assert_eq!(live_events[0].id.as_deref(), Some("0"));
    assert!(live_events[0].data.contains("\"stepsTotal\""));

    // Unknown job: a plain buffered 404, not a stream.
    let miss = client.sse("/jobs/9999/events").unwrap();
    assert_eq!(miss.status, 404);
    assert!(!miss.is_streaming());

    wait_for_gauge(&registry, "sse_streams_active", 0);
    assert!(registry.counter("sse_events_sent_total").get() >= 2 * 3);
}

/// The starvation pin from the issue: holding `max_streams` SSE
/// connections open must leave session creation, job submission, and
/// status polling fully functional, and the stream after the cap is
/// answered `429` instead of queueing behind the lane.
#[test]
fn held_streams_do_not_starve_request_response_traffic() {
    const MAX_STREAMS: usize = 4;
    let (service, registry, server) = start_service(
        2,
        ServerConfig {
            workers: 2,
            max_streams: MAX_STREAMS,
            heartbeat_interval: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    );
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(60));

    // Saturate the stream lane with never-ending alert feeds.
    let held: Vec<_> = (0..MAX_STREAMS)
        .map(|_| {
            let s = client.sse("/alerts/events").unwrap();
            assert_eq!(s.status, 200);
            assert!(s.is_streaming());
            s
        })
        .collect();
    assert_eq!(
        registry.gauge("sse_streams_active").get(),
        MAX_STREAMS as i64
    );
    assert_eq!(service.alert_subscribers(), MAX_STREAMS);

    // One more stream overflows the lane: 429, not a hang — and the
    // rejection tells the client when to come back.
    let overflow = client.sse("/alerts/events").unwrap();
    assert_eq!(overflow.status, 429);
    assert!(!overflow.is_streaming());
    let retry: u64 = overflow
        .headers
        .get("retry-after")
        .expect("stream-overflow 429 must carry retry-after")
        .parse()
        .expect("retry-after must be integer seconds");
    assert!(retry >= 1);

    // Request/response traffic still flows through the worker pool.
    let session = open_session(&client);
    let spec = serde_json::to_vec(&JobSpec::detect(&["mv_detector"])).unwrap();
    let resp = client
        .post(&format!("/sessions/{session}/jobs"), spec)
        .unwrap();
    assert_eq!(resp.status, 202);
    let submitted: serde_json::Value = resp.json_body().unwrap();
    let job_id = submitted["jobId"].as_u64().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status: serde_json::Value = client
            .get(&format!("/jobs/{job_id}"))
            .unwrap()
            .json_body()
            .unwrap();
        if status["state"] == "Done" {
            break;
        }
        assert!(Instant::now() < deadline, "poll starved by held streams");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Dropping the clients reaps the streams (heartbeat writes fail),
    // freeing lane slots and unsubscribing from the bus.
    drop(held);
    wait_for_gauge(&registry, "sse_streams_active", 0);
    assert!(registry.counter("sse_disconnects_total").get() >= MAX_STREAMS as u64);
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.alert_subscribers() != 0 {
        assert!(Instant::now() < deadline, "subscriptions never released");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A client that vanishes mid-stream must not leak its lane slot or its
/// bus subscription: the next heartbeat write fails and the pump tears
/// the stream down.
#[test]
fn mid_stream_disconnect_frees_slot_and_unsubscribes() {
    let (service, registry, server) = start_service(
        1,
        ServerConfig {
            heartbeat_interval: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    );
    let client = Client::new(server.addr());

    let stream = client.sse("/alerts/events").unwrap();
    assert!(stream.is_streaming());
    assert_eq!(registry.gauge("sse_streams_active").get(), 1);
    assert_eq!(service.alert_subscribers(), 1);

    drop(stream); // mid-stream disconnect
    wait_for_gauge(&registry, "sse_streams_active", 0);
    assert!(registry.counter("sse_disconnects_total").get() >= 1);
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.alert_subscribers() != 0 {
        assert!(Instant::now() < deadline, "subscription never released");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Cancelling a running job mid-stream delivers the terminal
/// `cancelled` event to the subscriber and then ends the stream.
#[test]
fn cancel_mid_stream_emits_cancelled_terminal_event() {
    let (_service, _registry, server) = start_service(1, ServerConfig::default());
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(60));
    let session = open_session(&client);

    // Many short sleeps: cancellation is cooperative between steps.
    let steps = vec![JobStep::Sleep { ms: 50 }; 100];
    let spec = serde_json::to_vec(&JobSpec::new(steps)).unwrap();
    let resp = client
        .post(&format!("/sessions/{session}/jobs"), spec)
        .unwrap();
    assert_eq!(resp.status, 202);
    let submitted: serde_json::Value = resp.json_body().unwrap();
    let job_id = submitted["jobId"].as_u64().unwrap();

    let mut stream = client.sse(&format!("/jobs/{job_id}/events")).unwrap();
    assert!(stream.is_streaming());
    let first = stream.next_event().unwrap().expect("plan event");
    assert_eq!(first.event, "plan");

    assert_eq!(
        client.delete(&format!("/jobs/{job_id}")).unwrap().status,
        200
    );

    let mut last = first;
    while let Some(ev) = stream.next_event().unwrap() {
        last = ev;
    }
    assert_eq!(last.event, "cancelled", "terminal event: {last:?}");
    assert!(last.data.contains("\"state\":\"cancelled\""), "{last:?}");
}

/// An SSE consumer that stops reading entirely (slow-loris on the read
/// side) is reaped by the per-chunk write deadline once the socket
/// buffers fill — it cannot pin a lane slot forever.
#[test]
fn slow_sse_consumer_is_reaped_by_write_deadline() {
    struct Flood;
    impl StreamSource for Flood {
        fn next_chunk(&mut self, _wait: Duration) -> StreamChunk {
            StreamChunk::Data(vec![b'x'; 64 * 1024])
        }
    }
    let registry = Arc::new(Registry::new());
    let router = Router::new().route(Method::Get, "/flood", |_req, _params| {
        Response::stream("text/event-stream", Flood)
    });
    let server = Server::start_with(
        router,
        ServerConfig {
            workers: 1,
            stream_write_timeout: Some(Duration::from_millis(200)),
            metrics: Some(Arc::clone(&registry)),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Hand-rolled consumer that sends the request and then never reads.
    let mut socket = TcpStream::connect(server.addr()).unwrap();
    write!(socket, "GET /flood HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    socket.flush().unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    while registry.counter("sse_disconnects_total").get() == 0 {
        assert!(Instant::now() < deadline, "stalled consumer never reaped");
        std::thread::sleep(Duration::from_millis(50));
    }
    wait_for_gauge(&registry, "sse_streams_active", 0);
    drop(socket);
}

/// `GET /alerts/events` delivers quality alerts raised by pipeline
/// stages while the subscriber is attached (live-feed semantics).
#[test]
fn alert_feed_streams_profile_alerts_live() {
    let (_service, _registry, server) = start_service(1, ServerConfig::default());
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(60));

    let mut feed = client.sse("/alerts/events").unwrap();
    assert!(feed.is_streaming());

    // Half the rows are missing in each column — well past the profile
    // alert threshold, so profiling raises high-missing alerts.
    let resp: CreateSessionResponse = client
        .post_json(
            "/sessions",
            &CreateSessionRequest {
                file_name: Some("gaps.csv".to_string()),
                csv: Some("a,b\n1,x\n2,y\n,\n,\n".to_string()),
                ..CreateSessionRequest::default()
            },
        )
        .unwrap();
    let spec = serde_json::to_vec(&JobSpec::profile()).unwrap();
    let resp = client
        .post(&format!("/sessions/{}/jobs", resp.session.session_id), spec)
        .unwrap();
    assert_eq!(resp.status, 202);

    // Profiling raises several alerts (duplicate rows, high-missing
    // columns); scan the feed for a high-missing one.
    let mut seen = Vec::new();
    for _ in 0..16 {
        let alert = feed.next_event().unwrap().expect("an alert event");
        assert_eq!(alert.event, "alert");
        assert!(alert.data.contains("\"stage\":\"profile\""), "{alert:?}");
        if alert.data.contains("Missing") {
            return;
        }
        seen.push(alert);
    }
    panic!("no high-missing alert on the feed: {seen:?}");
}

/// Backpressure rejections on the submit path must carry a concrete
/// back-off: every `429` from `POST /sessions/{id}/jobs` — whether the
/// bounded queue filled or the health gate shed the request — has an
/// integer `Retry-After` header derived from the observed drain rate.
#[test]
fn submit_backpressure_429_carries_retry_after_over_the_wire() {
    let registry = Arc::new(Registry::new());
    let service = Arc::new(
        JobService::new(JobServiceConfig {
            workers: 1,
            queue_depth: 1,
            metrics: Some(Arc::clone(&registry)),
            ..JobServiceConfig::default()
        })
        .unwrap(),
    );
    let server = Server::start_with(
        job_service_router(Arc::clone(&service)),
        ServerConfig::default(),
    )
    .unwrap();
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(30));
    let session = open_session(&client);

    // Pin the single worker and fill the depth-1 queue; keep submitting
    // until backpressure answers. Long sleeps make the race a non-issue.
    let spec = serde_json::to_vec(&JobSpec::new(vec![JobStep::Sleep { ms: 5_000 }])).unwrap();
    let mut accepted = Vec::new();
    let mut shed = None;
    for _ in 0..32 {
        let resp = client
            .post(&format!("/sessions/{session}/jobs"), spec.clone())
            .unwrap();
        match resp.status {
            202 => {
                let body: serde_json::Value = resp.json_body().unwrap();
                accepted.push(body["jobId"].as_u64().unwrap());
            }
            429 => {
                shed = Some(resp);
                break;
            }
            other => panic!("unexpected submit status {other}"),
        }
    }
    let shed = shed.expect("a depth-1 queue must reject within 32 submits");
    let retry: u64 = shed
        .headers
        .get("retry-after")
        .expect("submit 429 must carry retry-after")
        .parse()
        .expect("retry-after must be integer seconds");
    assert!(retry >= 1, "floor is one second, got {retry}");

    // Unwind: cancel everything so the server tears down fast.
    for id in accepted {
        client.delete(&format!("/jobs/{id}")).unwrap();
    }
}

/// `GET /health` on an idle service: `200`, verdict `pass`, no reason
/// codes, and per-signal evidence rows with value/threshold/window.
#[test]
fn health_endpoint_reports_pass_with_evidence_when_idle() {
    let (_service, _registry, server) = start_service(2, ServerConfig::default());
    let client = Client::new(server.addr());

    let resp = client.get("/health").unwrap();
    assert_eq!(resp.status, 200);
    let body: serde_json::Value = resp.json_body().unwrap();
    assert_eq!(body["verdict"], "pass");
    assert_eq!(body["reasons"].as_array().unwrap().len(), 0);
    let signals = body["signals"].as_array().unwrap();
    assert!(!signals.is_empty());
    for sig in signals {
        assert!(sig["name"].as_str().is_some(), "{sig:?}");
        assert!(sig["value"].as_f64().is_some(), "{sig:?}");
        assert!(sig["threshold"].as_f64().is_some(), "{sig:?}");
        assert!(sig["window"].as_str().is_some(), "{sig:?}");
        assert_eq!(sig["verdict"], "pass", "{sig:?}");
    }
    let names: Vec<&str> = signals
        .iter()
        .map(|s| s["name"].as_str().unwrap())
        .collect();
    assert!(names.contains(&"jobs_queue_depth"));
    assert!(names.contains(&"jobs_workers_alive"));
    assert!(names.contains(&"sse_streams_active"));
}

/// `keep_alive_timeout: None` means close-after-response: a default
/// HTTP/1.1 request (implicit keep-alive) is answered with
/// `connection: close` and the socket reaches EOF immediately — the
/// worker is not pinned for the read-timeout window.
#[test]
fn keep_alive_none_closes_after_each_response() {
    let router = Router::new().route(Method::Get, "/ping", |_req, _params| {
        Response::new(200, b"pong".to_vec())
    });
    let server = Server::start_with(
        router,
        ServerConfig {
            workers: 1,
            keep_alive_timeout: None,
            // Long read timeout: before the fix, the worker sat in
            // read() for this long after answering, wedging the pool.
            read_timeout: Some(Duration::from_secs(30)),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let started = Instant::now();
    let mut socket = TcpStream::connect(server.addr()).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // No `connection` header: HTTP/1.1 defaults to keep-alive.
    write!(socket, "GET /ping HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    socket.flush().unwrap();
    let mut buf = Vec::new();
    socket.read_to_end(&mut buf).unwrap(); // EOF = server closed
    let head = String::from_utf8_lossy(&buf).to_lowercase();
    assert!(head.contains("connection: close"), "{head}");
    assert!(head.ends_with("pong"));

    // A second client must get through the single worker right away.
    let client = Client::new(server.addr());
    assert_eq!(client.get("/ping").unwrap().status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "worker was pinned after the response"
    );
}

/// Old one-request clients that read to EOF still work: a plain
/// `Request::write_to` (no `connection` header, HTTP/1.1 default
/// keep-alive) against the pooled server, answered and then closed by
/// the client — the worker must not be wedged by the open socket.
#[test]
fn mixed_keep_alive_and_close_clients_share_one_worker() {
    let router = Router::new().route(Method::Get, "/ping", |_req, _params| {
        Response::new(200, b"pong".to_vec())
    });
    let server = Server::start_with(
        router,
        ServerConfig {
            workers: 1,
            keep_alive_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = Client::new(server.addr());

    // keep-alive client → idle → a close-mode client must still get
    // through once the idle timeout frees the single worker.
    let mut conn = client.connect().unwrap();
    assert_eq!(conn.get("/ping").unwrap().status, 200);
    let started = Instant::now();
    assert_eq!(client.get("/ping").unwrap().status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle keep-alive connection must not starve the pool"
    );
    drop(conn);
    let req = Request::new(Method::Get, "/ping", Vec::new());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    req.write_to(&mut stream, "t").unwrap();
    let resp = Response::read_from(&stream).unwrap();
    assert_eq!(resp.status, 200);
}

//! Integration tests for the hardened serving path: the bounded
//! keep-alive connection pool in front of the real job service, the
//! strict Content-Length protocol checks over the wire, route
//! specificity across merged routers, and the `/metrics` endpoint
//! after actual job traffic.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datalens::jobs::rest::{job_service_router, CreateSessionRequest, CreateSessionResponse};
use datalens::jobs::{JobService, JobServiceConfig, JobSpec, JobStep};
use datalens_obs::Registry;
use datalens_rest::{
    metrics_router, Client, Method, Request, Response, Router, Server, ServerConfig,
};

/// A job service with `workers` pipeline workers, shared metrics
/// registry, served over the given HTTP pool configuration.
fn start_service(workers: usize, config: ServerConfig) -> (Arc<JobService>, Arc<Registry>, Server) {
    let registry = Arc::new(Registry::new());
    let service = Arc::new(
        JobService::new(JobServiceConfig {
            workers,
            queue_depth: 64,
            metrics: Some(Arc::clone(&registry)),
            ..JobServiceConfig::default()
        })
        .unwrap(),
    );
    let router =
        job_service_router(Arc::clone(&service)).merge(metrics_router(Arc::clone(&registry)));
    let server = Server::start_with(
        router,
        ServerConfig {
            metrics: Some(Arc::clone(&registry)),
            ..config
        },
    )
    .unwrap();
    (service, registry, server)
}

fn open_session(client: &Client) -> u64 {
    let resp: CreateSessionResponse = client
        .post_json(
            "/sessions",
            &CreateSessionRequest {
                file_name: Some("serve.csv".to_string()),
                csv: Some("a,b\n1,x\n2,y\n,\n".to_string()),
                ..CreateSessionRequest::default()
            },
        )
        .unwrap();
    resp.session.session_id
}

/// One persistent connection drives the whole submit/poll/result cycle:
/// the dashboard's hot path never pays per-request TCP setup.
#[test]
fn keep_alive_connection_serves_the_whole_job_cycle() {
    let (_service, _registry, server) = start_service(2, ServerConfig::default());
    let client = Client::new(server.addr());
    let session = open_session(&client);

    let mut conn = client.connect().unwrap();
    for _ in 0..3 {
        let spec = serde_json::to_vec(&JobSpec::detect(&["mv_detector"])).unwrap();
        let resp = conn
            .post(&format!("/sessions/{session}/jobs"), spec)
            .unwrap();
        assert_eq!(resp.status, 202);
        let submitted: serde_json::Value = resp.json_body().unwrap();
        let job_id = submitted["jobId"].as_u64().unwrap();

        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let resp = conn.get(&format!("/jobs/{job_id}")).unwrap();
            assert_eq!(resp.status, 200);
            let status: serde_json::Value = resp.json_body().unwrap();
            match status["state"].as_str().unwrap_or_default() {
                "Done" => break,
                "Failed" | "Cancelled" => panic!("job failed: {status:?}"),
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
            assert!(Instant::now() < deadline, "job never finished");
        }
        let resp = conn.get(&format!("/jobs/{job_id}/result")).unwrap();
        assert_eq!(resp.status, 200);
    }
}

/// Raw-socket request with hand-written headers; returns the status the
/// server answers with (it must 400 and close on protocol violations
/// instead of misparsing the length).
fn raw_request_status(addr: std::net::SocketAddr, target: &str, cl_lines: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n{cl_lines}\r\n{{}}"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    let head = String::from_utf8_lossy(&buf);
    head.split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status")
}

#[test]
fn malformed_and_duplicate_content_length_get_400_over_the_wire() {
    let (_service, _registry, server) = start_service(1, ServerConfig::default());
    let addr = server.addr();

    // Regression: "-2" and "2x" used to parse as 0 → empty-body dispatch.
    assert_eq!(
        raw_request_status(addr, "/sessions", "content-length: -2\r\n"),
        400
    );
    assert_eq!(
        raw_request_status(addr, "/sessions", "content-length: 2x\r\n"),
        400
    );
    assert_eq!(
        raw_request_status(
            addr,
            "/sessions",
            "content-length: 2\r\ncontent-length: 3\r\n"
        ),
        400
    );
    // A well-formed length still dispatches (unknown job → 404, not a
    // protocol error).
    assert_eq!(
        raw_request_status(addr, "/jobs/999/whatever", "content-length: 2\r\n"),
        404
    );
}

/// `/metrics` (a literal route) must win over `/{param}`-style routes
/// no matter which router was merged first.
#[test]
fn literal_metrics_route_beats_param_route_after_merge() {
    let registry = Arc::new(Registry::new());
    registry.counter("probe_total").inc();
    // The param route is registered BEFORE the literal /metrics route.
    let param_first = Router::new()
        .route(Method::Get, "/{page}", |_req, params| {
            Response::error(410, &format!("param:{}", &params["page"]))
        })
        .merge(metrics_router(Arc::clone(&registry)));
    let server = Server::start(param_first).unwrap();
    let client = Client::new(server.addr());

    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200, "literal route must win");
    let body: serde_json::Value = resp.json_body().unwrap();
    assert_eq!(body["counters"]["probe_total"], 1);
    // Other paths still fall through to the param route.
    assert_eq!(client.get("/anything").unwrap().status, 410);
}

/// 64 clients hammer a server whose pool has 4 workers: the number of
/// concurrently served connections stays bounded by the pool size, and
/// every client is eventually answered (accept backpressure, no drops).
#[test]
fn sixty_four_clients_are_bounded_by_the_worker_pool() {
    const CLIENTS: usize = 64;
    const WORKERS: usize = 4;

    let in_flight = Arc::new(AtomicUsize::new(0));
    let high_water = Arc::new(AtomicUsize::new(0));
    let (fly, high) = (Arc::clone(&in_flight), Arc::clone(&high_water));
    let router = Router::new().route(Method::Get, "/work", move |_req, _params| {
        let now = fly.fetch_add(1, Ordering::SeqCst) + 1;
        high.fetch_max(now, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(5));
        fly.fetch_sub(1, Ordering::SeqCst);
        Response::new(200, b"ok".to_vec())
    });
    let server = Server::start_with(
        router,
        ServerConfig {
            workers: WORKERS,
            accept_backlog: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let client = Client::new(addr).with_timeout(Duration::from_secs(60));
                let resp = client.get("/work").unwrap();
                assert_eq!(resp.status, 200);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let peak = high_water.load(Ordering::SeqCst);
    assert!(
        peak <= WORKERS,
        "{peak} connections in flight, pool is {WORKERS}"
    );
    assert!(peak > 0);
}

/// After real traffic, `/metrics` reports per-route request counters and
/// latency histograms, the job queue gauges, and engine stage timings —
/// in both JSON and Prometheus text formats.
#[test]
fn metrics_endpoint_reflects_job_traffic_in_both_formats() {
    let (_service, _registry, server) = start_service(2, ServerConfig::default());
    let client = Client::new(server.addr());
    let session = open_session(&client);

    let spec = serde_json::to_vec(&JobSpec::new(vec![
        JobStep::Detect {
            tools: vec!["mv_detector".into()],
        },
        JobStep::Repair {
            tool: "standard_imputer".into(),
        },
    ]))
    .unwrap();
    let resp = client
        .post(&format!("/sessions/{session}/jobs"), spec)
        .unwrap();
    assert_eq!(resp.status, 202);
    let submitted: serde_json::Value = resp.json_body().unwrap();
    let job_id = submitted["jobId"].as_u64().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status: serde_json::Value = client
            .get(&format!("/jobs/{job_id}"))
            .unwrap()
            .json_body()
            .unwrap();
        if status["state"] == "Done" {
            break;
        }
        assert!(
            !matches!(status["state"].as_str(), Some("Failed" | "Cancelled")),
            "job failed: {status:?}"
        );
        assert!(Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(2));
    }

    // JSON view: route counters keyed by pattern (not concrete path),
    // queue gauges, and per-stage engine histograms.
    let json: serde_json::Value = client.get("/metrics").unwrap().json_body().unwrap();
    let counters = &json["counters"];
    assert_eq!(
        counters
            ["http_requests_total{route=\"/sessions/{id}/jobs\",method=\"POST\",status=\"202\"}"],
        1
    );
    assert!(
        counters["http_requests_total{route=\"/jobs/{id}\",method=\"GET\",status=\"200\"}"]
            .as_u64()
            .unwrap()
            >= 1
    );
    let histograms = &json["histograms"];
    assert!(
        histograms["http_request_ms{route=\"/jobs/{id}\"}"]["count"]
            .as_u64()
            .unwrap()
            >= 1
    );
    assert_eq!(counters["jobs_submitted_total"], 1);
    assert_eq!(counters["jobs_state_total{state=\"done\"}"], 1);
    assert_eq!(json["gauges"]["jobs_queue_depth"], 0);
    assert!(histograms["jobs_queue_wait_ms"]["count"].as_u64().unwrap() >= 1);
    for stage in ["detect", "repair"] {
        assert!(
            histograms[format!("engine_stage_ms{{stage=\"{stage}\"}}").as_str()]["count"]
                .as_u64()
                .unwrap()
                >= 1,
            "missing engine stage timing for {stage}"
        );
    }

    // Prometheus text view of the same registry.
    let resp = client.get("/metrics?format=prometheus").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers.get("content-type").map(String::as_str),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(resp.body).unwrap();
    assert!(text.contains("# TYPE http_requests_total counter"));
    assert!(text.contains("http_request_ms_bucket"));
    assert!(text.contains("jobs_queue_depth 0"));
    assert!(text.contains("engine_stage_ms_sum{stage=\"detect\"}"));

    // The metrics scrapes themselves show up on the next scrape.
    let json: serde_json::Value = client.get("/metrics").unwrap().json_body().unwrap();
    assert!(
        json["counters"]["http_requests_total{route=\"/metrics\",method=\"GET\",status=\"200\"}"]
            .as_u64()
            .unwrap()
            >= 2
    );
}

/// Old one-request clients that read to EOF still work: a plain
/// `Request::write_to` (no `connection` header, HTTP/1.1 default
/// keep-alive) against the pooled server, answered and then closed by
/// the client — the worker must not be wedged by the open socket.
#[test]
fn mixed_keep_alive_and_close_clients_share_one_worker() {
    let router = Router::new().route(Method::Get, "/ping", |_req, _params| {
        Response::new(200, b"pong".to_vec())
    });
    let server = Server::start_with(
        router,
        ServerConfig {
            workers: 1,
            keep_alive_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = Client::new(server.addr());

    // keep-alive client → idle → a close-mode client must still get
    // through once the idle timeout frees the single worker.
    let mut conn = client.connect().unwrap();
    assert_eq!(conn.get("/ping").unwrap().status, 200);
    let started = Instant::now();
    assert_eq!(client.get("/ping").unwrap().status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle keep-alive connection must not starve the pool"
    );
    drop(conn);
    let req = Request::new(Method::Get, "/ping", Vec::new());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    req.write_to(&mut stream, "t").unwrap();
    let resp = Response::read_from(&stream).unwrap();
    assert_eq!(resp.status, 200);
}

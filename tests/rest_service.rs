//! Integration test: the REST tool bus — a dashboard-style client driving
//! detection and repair on a live in-process server, the way Figure 1's
//! architecture wires external tools.

use datalens::service::{
    tool_service_router, ContextUpdate, DetectRequest, DetectResponse, RepairRequest,
    RepairResponse, ToolList, WireCell,
};
use datalens_rest::{Client, Server};
use datalens_table::csv::{read_csv_str, write_csv_str, CsvOptions};
use datalens_table::CellRef;

#[test]
fn remote_detect_matches_local_execution() {
    let server = Server::start(tool_service_router(0)).unwrap();
    let client = Client::new(server.addr());

    let dd = datalens_datasets::registry::dirty("nasa", 0).unwrap();
    let csv = write_csv_str(&dd.dirty);

    // Remote run.
    let remote: DetectResponse = client
        .post_json(
            "/detect",
            &DetectRequest {
                tool: "sd".into(),
                csv: csv.clone(),
            },
        )
        .unwrap();

    // Local run on the same payload (through the same CSV round trip the
    // server performs).
    let table = read_csv_str("payload", &csv, &CsvOptions::default()).unwrap();
    let local = datalens_detect::detector_by_name("sd")
        .unwrap()
        .detect(&table, &datalens_detect::DetectionContext::default());

    let remote_cells: Vec<CellRef> = remote.cells.iter().map(|&c| c.into()).collect();
    assert_eq!(remote_cells, local.cells);
    assert!(!remote_cells.is_empty());
}

#[test]
fn detect_then_repair_round_trip_over_http() {
    let server = Server::start(tool_service_router(0)).unwrap();
    let client = Client::new(server.addr());

    let csv = "x,y\n1,10\n2,20\n3,30\n4,40\n5,50\n6,60\n7,70\n8,80\n9,90\n10,9999\n";
    let detected: DetectResponse = client
        .post_json(
            "/detect",
            &DetectRequest {
                tool: "iqr".into(),
                csv: csv.into(),
            },
        )
        .unwrap();
    assert!(!detected.cells.is_empty());

    let repaired: RepairResponse = client
        .post_json(
            "/repair",
            &RepairRequest {
                tool: "ml_imputer".into(),
                csv: csv.into(),
                error_cells: detected.cells,
            },
        )
        .unwrap();
    assert!(repaired.n_repaired > 0);
    let table = read_csv_str("t", &repaired.csv, &CsvOptions::default()).unwrap();
    assert_eq!(table.null_count(), 0);
    // The lie is gone.
    let fixed = table.get_at(9, "y").unwrap().as_f64().unwrap();
    assert!(fixed < 1000.0, "repaired value {fixed}");
}

#[test]
fn put_context_flows_into_rule_based_detection() {
    let server = Server::start(tool_service_router(0)).unwrap();
    let client = Client::new(server.addr());

    let update = ContextUpdate {
        tagged_values: vec![],
        rules: vec![(vec!["zip".into()], "city".into())],
    };
    let resp = client
        .put("/context", serde_json::to_vec(&update).unwrap())
        .unwrap();
    assert!(resp.is_success());

    let detected: DetectResponse = client
        .post_json(
            "/detect",
            &DetectRequest {
                tool: "nadeef".into(),
                csv: "zip,city\n1,ulm\n1,ulm\n1,oops\n".into(),
            },
        )
        .unwrap();
    let cells: Vec<WireCell> = detected.cells;
    assert_eq!(cells.len(), 1);
    assert_eq!((cells[0].row, cells[0].col), (2, 1));
}

#[test]
fn tool_discovery_covers_both_registries() {
    let server = Server::start(tool_service_router(0)).unwrap();
    let client = Client::new(server.addr());
    let tools: ToolList = client.get_json("/tools").unwrap();
    assert_eq!(tools.detectors.len(), datalens_detect::DETECTOR_NAMES.len());
    assert_eq!(tools.repairers.len(), datalens_repair::REPAIRER_NAMES.len());
}

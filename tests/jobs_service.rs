//! Integration tests: the multi-session job service behind the REST bus.
//!
//! Covers the service's four contracts end to end, over a live
//! in-process HTTP server:
//! - concurrent sessions fan out across the worker pool and produce
//!   results bit-identical to sequential controller runs;
//! - same-session jobs execute in strict FIFO submission order;
//! - cancelling mid-pipeline yields `Cancelled` and leaves the session's
//!   Delta log without a partial commit (and logs a `Killed` run);
//! - a full bounded queue rejects submissions with HTTP 429.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datalens::controller::{DashboardConfig, DashboardController};
use datalens::jobs::rest::{
    job_service_router, CreateSessionRequest, CreateSessionResponse, JobResultResponse,
    SubmitJobResponse,
};
use datalens::jobs::{JobService, JobServiceConfig, JobSpec, JobState, JobStatus, JobStep};
use datalens_rest::{Client, Server};
use datalens_table::csv::write_csv_str;
use datalens_tracking::{RunStatus, TrackingStore, EXPERIMENT_JOBS};

fn start(
    workers: usize,
    queue_depth: usize,
    workspace: Option<PathBuf>,
) -> (Arc<JobService>, Server) {
    let service = Arc::new(
        JobService::new(JobServiceConfig {
            workers,
            queue_depth,
            workspace_dir: workspace,
            ..JobServiceConfig::default()
        })
        .unwrap(),
    );
    let server = Server::start(job_service_router(Arc::clone(&service))).unwrap();
    (service, server)
}

fn open_session(client: &Client, file_name: &str, csv: &str) -> u64 {
    let resp: CreateSessionResponse = client
        .post_json(
            "/sessions",
            &CreateSessionRequest {
                file_name: Some(file_name.to_string()),
                csv: Some(csv.to_string()),
                ..CreateSessionRequest::default()
            },
        )
        .unwrap();
    resp.session.session_id
}

fn submit(client: &Client, session_id: u64, spec: &JobSpec) -> u64 {
    let resp: SubmitJobResponse = client
        .post_json(&format!("/sessions/{session_id}/jobs"), spec)
        .unwrap();
    resp.job_id
}

/// `GET /jobs/{id}`, tolerating transient transport errors: under
/// parallel test load the server may close an idle keep-alive
/// connection mid-poll, and the client reconnects on the next attempt.
fn try_status(client: &Client, job_id: u64) -> Option<JobStatus> {
    client.get_json(&format!("/jobs/{job_id}")).ok()
}

/// Poll `GET /jobs/{id}` until the job is terminal.
fn wait_over_http(client: &Client, job_id: u64) -> JobStatus {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = try_status(client, job_id) {
            if status.state.is_terminal() {
                return status;
            }
        }
        assert!(Instant::now() < deadline, "job {job_id} did not finish");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A small dirty dataset, distinct per client: missing cells plus one
/// gross outlier so detect + repair both do real work.
fn dataset_csv(i: usize) -> String {
    let mut csv = String::from("id,score,grade\n");
    for r in 0..40 {
        let score = (r * 7 + i * 13) % 50 + 10;
        if r % 9 == 3 {
            csv.push_str(&format!("{r},,{}\n", score % 5));
        } else if r == 17 {
            csv.push_str(&format!("{r},{},{}\n", 99_000 + i, score % 5));
        } else {
            csv.push_str(&format!("{r},{score},{}\n", score % 5));
        }
    }
    csv
}

const DETECT_TOOLS: [&str; 2] = ["sd", "mv_detector"];
const REPAIR_TOOL: &str = "standard_imputer";

/// What a sequential, in-process controller produces on the same CSV
/// with the same seed and thread count as the service's sessions.
fn sequential_repair(csv: &str) -> (usize, usize, String) {
    let mut ctrl = DashboardController::new(DashboardConfig {
        workspace_dir: None,
        seed: 0,
        threads: 1,
        ..Default::default()
    })
    .unwrap();
    ctrl.ingest_csv_text("client.csv", csv).unwrap();
    let n_detections = ctrl.run_detection(&DETECT_TOOLS).unwrap();
    let n_repaired = ctrl.repair(REPAIR_TOOL).unwrap();
    (
        n_detections,
        n_repaired,
        write_csv_str(ctrl.repaired_table().unwrap()),
    )
}

#[test]
fn concurrent_sessions_match_sequential_runs_bit_for_bit() {
    const CLIENTS: usize = 8;
    let (_service, server) = start(4, 32, None);
    let addr = server.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let client = Client::new(addr);
                let csv = dataset_csv(i);
                let sid = open_session(&client, &format!("client{i}.csv"), &csv);
                let jid = submit(&client, sid, &JobSpec::clean(&DETECT_TOOLS, REPAIR_TOOL));
                let status = wait_over_http(&client, jid);
                assert_eq!(status.state, JobState::Done, "err: {:?}", status.error);
                let result: JobResultResponse =
                    client.get_json(&format!("/jobs/{jid}/result")).unwrap();
                (i, result)
            })
        })
        .collect();

    for h in handles {
        let (i, result) = h.join().unwrap();
        let (n_detections, n_repaired, repaired_csv) = sequential_repair(&dataset_csv(i));
        assert!(n_detections > 0 && n_repaired > 0);
        assert_eq!(
            result.outcome.n_detections,
            Some(n_detections),
            "client {i}"
        );
        assert_eq!(result.outcome.n_repaired, Some(n_repaired), "client {i}");
        assert_eq!(
            result.outcome.repaired_csv.as_deref(),
            Some(repaired_csv.as_str()),
            "client {i}: service repair must be bit-identical to the sequential run"
        );
    }
}

#[test]
fn same_session_jobs_run_in_fifo_submission_order() {
    let (service, server) = start(4, 32, None);
    let client = Client::new(server.addr());
    let sid = open_session(&client, "fifo.csv", &dataset_csv(0));

    // The first job sleeps before detecting, so jobs 2 and 3 are queued
    // while it runs: if same-session serialisation broke, a free worker
    // would run their detectors first and the report order would flip.
    let specs = [
        JobSpec::new(vec![
            JobStep::Sleep { ms: 150 },
            JobStep::Detect {
                tools: vec!["sd".into()],
            },
        ]),
        JobSpec::detect(&["iqr"]),
        JobSpec::detect(&["mv_detector"]),
    ];
    let ids: Vec<u64> = specs.iter().map(|s| submit(&client, sid, s)).collect();
    for &jid in &ids {
        let status = service.wait(jid, Some(Duration::from_secs(60))).unwrap();
        assert_eq!(status.state, JobState::Done, "err: {:?}", status.error);
    }

    let detect_order: Vec<String> = service
        .with_session(sid, |ctrl| {
            ctrl.stage_reports()
                .unwrap()
                .iter()
                .filter(|r| r.stage == "detect")
                .map(|r| r.detail.clone())
                .collect()
        })
        .unwrap();
    assert_eq!(detect_order, ["sd", "iqr", "mv_detector"]);
}

#[test]
fn cancel_mid_pipeline_leaves_delta_log_unchanged() {
    let ws = std::env::temp_dir().join(format!("datalens_jobs_cancel_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ws);
    let (service, server) = start(1, 8, Some(ws.clone()));
    let client = Client::new(server.addr());
    let sid = open_session(&client, "cancel.csv", &dataset_csv(1));

    let spec = JobSpec::new(vec![
        JobStep::Detect {
            tools: DETECT_TOOLS.iter().map(|s| s.to_string()).collect(),
        },
        JobStep::Sleep { ms: 30_000 },
        JobStep::Repair {
            tool: REPAIR_TOOL.into(),
        },
    ]);
    let jid = submit(&client, sid, &spec);

    // Let detection complete, then cancel while the job sleeps — before
    // the repair step can commit to the Delta log.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if try_status(&client, jid).is_some_and(|s| s.steps_done >= 1) {
            break;
        }
        assert!(Instant::now() < deadline, "detect step never finished");
        std::thread::sleep(Duration::from_millis(5));
    }
    let resp = client.delete(&format!("/jobs/{jid}")).unwrap();
    assert_eq!(resp.status, 200);

    let status = service.wait(jid, Some(Duration::from_secs(60))).unwrap();
    assert_eq!(status.state, JobState::Cancelled);
    assert!(status.error.is_none());

    // The result carries the completed detect step but no repair output…
    let result: JobResultResponse = client.get_json(&format!("/jobs/{jid}/result")).unwrap();
    assert!(result.outcome.n_detections.unwrap() > 0);
    assert!(result.outcome.n_repaired.is_none());
    assert!(result.outcome.repaired_csv.is_none());

    // …and the session's Delta log holds only the INGEST commit: no
    // partial repair made it to storage.
    service
        .with_session(sid, |ctrl| {
            let state = ctrl.state().unwrap();
            assert_eq!(state.repaired_version, None);
            let delta = state
                .delta
                .as_ref()
                .expect("workspace session has a delta table");
            assert_eq!(delta.latest_version().unwrap(), 0, "only the INGEST commit");
        })
        .unwrap();

    // The job's lifecycle run is logged as Killed (MLflow parity). The
    // tracking write is best-effort bookkeeping that lands just after
    // the terminal state is published, so poll briefly for it.
    let store = TrackingStore::new(ws.join("mlruns")).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let runs = loop {
        if let Some(exp) = store.find_experiment(EXPERIMENT_JOBS).unwrap() {
            let runs = store.list_runs(&exp).unwrap();
            if runs.iter().any(|r| r.status != RunStatus::Running) {
                break runs;
            }
        }
        assert!(Instant::now() < deadline, "tracking run never appeared");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].status, RunStatus::Killed);

    drop(service);
    let _ = std::fs::remove_dir_all(&ws);
}

#[test]
fn full_queue_rejects_submissions_with_429() {
    let (service, server) = start(1, 1, None);
    let client = Client::new(server.addr());
    let sid = open_session(&client, "busy.csv", &dataset_csv(2));

    // Occupy the single worker…
    let running = submit(
        &client,
        sid,
        &JobSpec::new(vec![JobStep::Sleep { ms: 30_000 }]),
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if try_status(&client, running).is_some_and(|s| s.state == JobState::Running) {
            break;
        }
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // …its result is not available yet (409)…
    let resp = client.get(&format!("/jobs/{running}/result")).unwrap();
    assert_eq!(resp.status, 409);

    // …fill the queue's single slot, then overflow it.
    let queued = submit(&client, sid, &JobSpec::profile());
    let body = serde_json::to_vec(&JobSpec::profile()).unwrap();
    let resp = client.post(&format!("/sessions/{sid}/jobs"), body).unwrap();
    assert_eq!(
        resp.status,
        429,
        "backpressure: {}",
        String::from_utf8_lossy(resp.body_bytes())
    );

    // Cancelling the running job frees the worker and the queued job
    // completes normally.
    let resp = client.delete(&format!("/jobs/{running}")).unwrap();
    assert_eq!(resp.status, 200);
    let status = service
        .wait(running, Some(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(status.state, JobState::Cancelled);
    let status = wait_over_http(&client, queued);
    assert_eq!(status.state, JobState::Done, "err: {:?}", status.error);

    // Unknown ids are 404s.
    assert_eq!(client.get("/jobs/999").unwrap().status, 404);
    assert_eq!(client.delete("/jobs/999").unwrap().status, 404);
    let resp = client
        .post(
            "/sessions/999/jobs",
            serde_json::to_vec(&JobSpec::profile()).unwrap(),
        )
        .unwrap();
    assert_eq!(resp.status, 404);
}

//! Determinism and incrementality regression tests for the parallel,
//! memoised profiler: any thread count and any cache temperature must
//! produce a bit-identical serialized report, and re-profiling after a
//! repair must recompute only the touched columns and their
//! correlation pairs.

use std::sync::Arc;

use datalens::engine::{Engine, EngineConfig};
use datalens_obs::Registry;
use datalens_profile::{BuildOptions, ProfileCache, ProfileConfig, ProfileMode, ProfileReport};
use datalens_table::{CellRef, Column, Table, Value};

/// Mixed-dtype fixture: three numeric columns (with nulls), one
/// categorical, one bool — exercises stats, histograms, alerts and all
/// three correlation matrices, including NaN cells (constant columns
/// are absent, but null-heavy pairs still short-circuit).
fn fixture() -> Table {
    let n = 240;
    let ints: Vec<Option<i64>> = (0..n)
        .map(|i| {
            if i % 11 == 0 {
                None
            } else {
                Some((i as i64 * 37) % 97)
            }
        })
        .collect();
    let floats: Vec<Option<f64>> = (0..n)
        .map(|i| Some((i as f64 * 0.37).sin() * 50.0))
        .collect();
    let drifting: Vec<Option<f64>> = (0..n)
        .map(|i| {
            if i % 13 == 0 {
                None
            } else {
                Some(i as f64 * 1.5 - 30.0)
            }
        })
        .collect();
    let cats = ["red", "green", "blue", "teal"];
    let strs: Vec<Option<&str>> = (0..n)
        .map(|i| if i % 17 == 0 { None } else { Some(cats[i % 4]) })
        .collect();
    let bools: Vec<Option<bool>> = (0..n).map(|i| Some(i % 3 == 0)).collect();
    Table::new(
        "fixture",
        vec![
            Column::from_i64("a", ints),
            Column::from_f64("b", floats),
            Column::from_f64("c", drifting),
            Column::from_str_vals("color", strs),
            Column::from_bool("flag", bools),
        ],
    )
    .unwrap()
}

fn serialized(report: &ProfileReport) -> String {
    serde_json::to_string(report).unwrap()
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let table = fixture();
    let config = ProfileConfig::default();
    let sequential = serialized(&ProfileReport::build(&table, &config));
    for threads in [1, 2, 8] {
        let parallel = serialized(&ProfileReport::build_with(
            &table,
            &config,
            &BuildOptions {
                threads,
                cache: None,
            },
        ));
        assert_eq!(sequential, parallel, "threads={threads} diverged");
    }
}

#[test]
fn hospital_and_beers_reports_are_bit_identical_across_threads() {
    let config = ProfileConfig::default();
    for name in ["hospital", "beers"] {
        let dd = datalens_datasets::registry::dirty(name, 0).unwrap();
        let cache = ProfileCache::new();
        let baseline = serialized(&ProfileReport::build(&dd.dirty, &config));
        for threads in [1, 2, 8] {
            for cache_opt in [None, Some(&cache)] {
                let got = serialized(&ProfileReport::build_with(
                    &dd.dirty,
                    &config,
                    &BuildOptions {
                        threads,
                        cache: cache_opt,
                    },
                ));
                assert_eq!(baseline, got, "{name} diverged at threads={threads}");
            }
        }
    }
}

#[test]
fn warm_cache_rebuild_is_bit_identical() {
    let table = fixture();
    let config = ProfileConfig::default();
    let cache = ProfileCache::new();
    let opts = BuildOptions {
        threads: 4,
        cache: Some(&cache),
    };
    let cold = serialized(&ProfileReport::build_with(&table, &config, &opts));
    let after_cold = cache.stats();
    assert_eq!(
        after_cold.column_misses, 5,
        "cold build computes every column"
    );
    assert_eq!(after_cold.pair_misses, 6, "3 pearson + 3 spearman pairs");

    let warm = serialized(&ProfileReport::build_with(&table, &config, &opts));
    assert_eq!(cold, warm, "warm rebuild must be bit-identical");
    let after_warm = cache.stats();
    assert_eq!(after_warm.column_hits - after_cold.column_hits, 5);
    assert_eq!(after_warm.pair_hits - after_cold.pair_hits, 6);
    assert_eq!(after_warm.column_misses, after_cold.column_misses);
    assert_eq!(after_warm.pair_misses, after_cold.pair_misses);
}

#[test]
fn reprofile_after_repair_recomputes_only_touched_columns() {
    let mut table = fixture();
    let engine = Engine::new(EngineConfig {
        threads: 2,
        seed: 0,
    });
    let (first, _) = engine.profile(&table);
    let before = engine.profile_cache().stats();

    // Simulate a repair touching a single cell of column "b" (index 1):
    // copy-on-write leaves every other column's Arc untouched.
    table.set(CellRef::new(7, 1), Value::Float(123.5)).unwrap();
    let (second, _) = engine.profile(&table);
    let after = engine.profile_cache().stats();

    assert_eq!(
        after.column_misses - before.column_misses,
        1,
        "only the repaired column is re-profiled"
    );
    assert_eq!(after.column_hits - before.column_hits, 4);
    // Correlation pairs touching "b": (a,b) and (b,c) under pearson and
    // spearman each; (a,c) stays cached.
    assert_eq!(after.pair_misses - before.pair_misses, 4);
    assert_eq!(after.pair_hits - before.pair_hits, 2);

    // The untouched columns' profiles are identical; the repaired one
    // actually changed.
    assert_eq!(
        serde_json::to_string(&first.columns[0]).unwrap(),
        serde_json::to_string(&second.columns[0]).unwrap()
    );
    assert_ne!(
        serde_json::to_string(&first.columns[1]).unwrap(),
        serde_json::to_string(&second.columns[1]).unwrap()
    );
}

#[test]
fn cache_counters_flow_into_the_metrics_registry() {
    let registry = Arc::new(Registry::new());
    let engine = Engine::new(EngineConfig {
        threads: 2,
        seed: 0,
    })
    .with_metrics(Some(Arc::clone(&registry)));
    let table = fixture();
    engine.profile(&table);
    engine.profile(&table);

    let stats = engine.profile_cache().stats();
    assert_eq!(
        registry.counter("profile_cache_hits_total").get(),
        stats.hits()
    );
    assert_eq!(
        registry.counter("profile_cache_misses_total").get(),
        stats.misses()
    );
    // Second run was fully warm: 5 column + 6 pair hits. The cold run
    // missed 5 columns, 6 pairs, and 4 per-chunk numeric partials (one
    // chunk for each of a, b, c, flag; "color" has no numeric stats).
    assert_eq!(stats.hits(), 11);
    assert_eq!(stats.misses(), 15);
}

/// Acceptance pin for the sketch backend: the approx-mode report on the
/// real hospital/beers datasets serialises to the same bytes on 1/2/8
/// threads and on cold vs warm caches. Sketch hashing is seeded per
/// column name (no ambient RNG), so two builds that never share a cache
/// still agree bit for bit.
#[test]
fn approx_reports_are_bit_identical_across_threads_and_cache() {
    let config = ProfileConfig {
        mode: ProfileMode::Approx,
        ..ProfileConfig::default()
    };
    for name in ["hospital", "beers"] {
        let dd = datalens_datasets::registry::dirty(name, 0).unwrap();
        let cache = ProfileCache::new();
        let baseline = serialized(&ProfileReport::build(&dd.dirty, &config));
        assert!(
            baseline.contains("\"approx\""),
            "{name} missing sketch data"
        );
        for threads in [1, 2, 8] {
            for cache_opt in [None, Some(&cache)] {
                let got = serialized(&ProfileReport::build_with(
                    &dd.dirty,
                    &config,
                    &BuildOptions {
                        threads,
                        cache: cache_opt,
                    },
                ));
                assert_eq!(baseline, got, "{name} approx diverged at threads={threads}");
            }
        }
    }
}

/// Warm approx rebuilds answer from the column cache; the per-chunk
/// sketch partials are computed exactly once per (content, seed) pair.
#[test]
fn approx_warm_cache_rebuild_is_bit_identical() {
    let table = fixture();
    let config = ProfileConfig {
        mode: ProfileMode::Approx,
        ..ProfileConfig::default()
    };
    let cache = ProfileCache::new();
    let opts = BuildOptions {
        threads: 4,
        cache: Some(&cache),
    };
    let cold = serialized(&ProfileReport::build_with(&table, &config, &opts));
    let after_cold = cache.stats();
    assert_eq!(
        after_cold.column_misses, 5,
        "cold build sketches every column"
    );
    assert_eq!(
        after_cold.sketch_misses, 5,
        "one sketch partial per column (single-chunk fixture)"
    );

    let warm = serialized(&ProfileReport::build_with(&table, &config, &opts));
    assert_eq!(cold, warm, "warm approx rebuild must be bit-identical");
    let after_warm = cache.stats();
    assert_eq!(after_warm.column_hits - after_cold.column_hits, 5);
    assert_eq!(
        after_warm.sketch_misses, after_cold.sketch_misses,
        "no re-sketching on a warm cache"
    );
}

#[test]
fn reprofile_after_repair_recomputes_only_touched_chunk() {
    let n = 240;
    let vals: Vec<Option<f64>> = (0..n).map(|i| Some(i as f64 * 0.25 - 9.0)).collect();
    let col = Column::from_f64("x", vals).rechunk(60); // 4 chunks of 60 rows
    let mut table = Table::new("t", vec![col]).unwrap();

    let cache = ProfileCache::new();
    let config = ProfileConfig::default();
    let opts = BuildOptions {
        threads: 1,
        cache: Some(&cache),
    };
    ProfileReport::build_with(&table, &config, &opts);
    let before = cache.stats();
    assert_eq!(before.chunk_misses, 4, "cold build computes every chunk");

    // Edit one cell in the third chunk: COW detaches only that chunk,
    // so the rebuild reuses the other three partials and re-derives the
    // column profile from the merged fold.
    table.set(CellRef::new(130, 0), Value::Float(1e6)).unwrap();
    ProfileReport::build_with(&table, &config, &opts);
    let after = cache.stats();

    assert_eq!(
        after.chunk_misses - before.chunk_misses,
        1,
        "only the edited chunk's partial is recomputed"
    );
    assert_eq!(after.chunk_hits - before.chunk_hits, 3);
    assert_eq!(after.column_misses - before.column_misses, 1);
}

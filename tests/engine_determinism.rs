//! Determinism regression test for the pipeline engine: running the full
//! detect → consolidate → repair pipeline with 1 worker thread and with N
//! worker threads must produce bit-identical results — same consolidated
//! cells, same provenance order, same repaired table.

use datalens::controller::{DashboardConfig, DashboardController};
use datalens::engine::{Engine, EngineConfig};
use datalens_datasets::registry;
use datalens_detect::{detector_by_name, ConsolidatedDetections, DetectionContext, Detector};
use datalens_table::Table;

const TOOLS: [&str; 7] = [
    "sd",
    "iqr",
    "mv_detector",
    "fahes",
    "nadeef",
    "katara",
    "isolation_forest",
];

fn run_pipeline(dataset: &str, threads: usize) -> (ConsolidatedDetections, Table) {
    let dd = registry::dirty(dataset, 11).unwrap();
    let mut dash = DashboardController::new(DashboardConfig {
        workspace_dir: None,
        seed: 11,
        threads,
        ..Default::default()
    })
    .unwrap();
    dash.ingest_dirty_dataset(&dd, dataset).unwrap();
    dash.discover_rules_approx(0.1).unwrap();
    dash.run_detection(&TOOLS).unwrap();
    dash.repair("standard_imputer").unwrap();
    (
        dash.detections().unwrap().clone(),
        dash.repaired_table().unwrap().clone(),
    )
}

fn assert_thread_count_invariant(dataset: &str) {
    let (det_seq, rep_seq) = run_pipeline(dataset, 1);
    for threads in [2, 8] {
        let (det_par, rep_par) = run_pipeline(dataset, threads);
        // Full structural equality: union cells, per-tool detections,
        // and provenance (cell → sorted tool names) must all match.
        assert_eq!(
            det_seq, det_par,
            "{dataset}: detections diverge at {threads} threads"
        );
        assert_eq!(
            rep_seq, rep_par,
            "{dataset}: repair output diverges at {threads} threads"
        );
    }
}

#[test]
fn hospital_pipeline_is_thread_count_invariant() {
    assert_thread_count_invariant("hospital");
}

#[test]
fn beers_pipeline_is_thread_count_invariant() {
    assert_thread_count_invariant("beers");
}

/// The engine-level guarantee, independent of the controller: fan-out
/// order never leaks into the consolidated result.
#[test]
fn engine_consolidation_is_name_sorted_regardless_of_threads() {
    let dd = registry::dirty("beers", 3).unwrap();
    let ctx = DetectionContext {
        seed: 3,
        ..DetectionContext::default()
    };
    let detectors: Vec<Box<dyn Detector>> =
        TOOLS.iter().map(|n| detector_by_name(n).unwrap()).collect();
    let mut merged = Vec::new();
    for threads in [1, 4] {
        let engine = Engine::new(EngineConfig { threads, seed: 3 });
        let (detections, reports) = engine.detect_all(&dd.dirty, &ctx, &detectors);
        // Per-tool reports come back in input order either way.
        let report_tools: Vec<&str> = reports.iter().map(|r| r.detail.as_str()).collect();
        assert_eq!(report_tools, TOOLS.to_vec());
        let dims = (dd.dirty.n_rows(), dd.dirty.n_rows() * dd.dirty.n_cols());
        merged.push(engine.consolidate(detections, dims).0);
    }
    assert_eq!(merged[0], merged[1]);
    // Consolidation ordered the per-tool detections by name.
    let tools: Vec<&str> = merged[0].per_tool.iter().map(|d| d.tool.as_str()).collect();
    let mut sorted = tools.clone();
    sorted.sort();
    assert_eq!(tools, sorted);
}

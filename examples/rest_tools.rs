//! The REST tool bus (§3): run the data-quality tools as services and
//! drive them over HTTP, the way Figure 1's architecture integrates
//! external tools.
//!
//! Run with: `cargo run --example rest_tools`

use datalens::service::{
    tool_service_router, ContextUpdate, DetectRequest, DetectResponse, RepairRequest,
    RepairResponse, ToolList,
};
use datalens_rest::{Client, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Boot the tool service on an ephemeral local port.
    let server = Server::start(tool_service_router(0))?;
    println!("tool service listening on http://{}", server.addr());
    let client = Client::new(server.addr());

    // Discover the available tools (GET).
    let tools: ToolList = client.get_json("/tools")?;
    println!("detectors: {}", tools.detectors.join(", "));
    println!("repairers: {}", tools.repairers.join(", "));

    // Push shared context: an FD rule and a tagged sentinel (PUT).
    let update = ContextUpdate {
        tagged_values: vec!["-1".into()],
        rules: vec![(vec!["zip".into()], "city".into())],
    };
    client.put("/context", serde_json::to_vec(&update)?)?;

    // Forward a detection task (POST).
    let csv = "zip,city,pop\n\
               10115,berlin,3700000\n\
               10115,berlin,3700000\n\
               10115,münchen,-1\n\
               50667,köln,1080000\n";
    let detection: DetectResponse = client.post_json(
        "/detect",
        &DetectRequest {
            tool: "nadeef".into(),
            csv: csv.into(),
        },
    )?;
    println!(
        "\nnadeef flagged {} cell(s): {:?}",
        detection.cells.len(),
        detection
            .cells
            .iter()
            .map(|c| (c.row, c.col))
            .collect::<Vec<_>>()
    );

    let tags: DetectResponse = client.post_json(
        "/detect",
        &DetectRequest {
            tool: "user_tags".into(),
            csv: csv.into(),
        },
    )?;
    println!("user_tags flagged {} cell(s)", tags.cells.len());

    // Forward the repair task with the combined detections (POST).
    let mut error_cells = detection.cells;
    error_cells.extend(tags.cells);
    let repaired: RepairResponse = client.post_json(
        "/repair",
        &RepairRequest {
            tool: "holoclean_repairer".into(),
            csv: csv.into(),
            error_cells,
        },
    )?;
    println!(
        "\nholoclean repaired {} cell(s); result:\n{}",
        repaired.n_repaired, repaired.csv
    );
    Ok(())
}

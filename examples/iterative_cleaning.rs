//! Iterative cleaning (§4 / Figure 5): let the dashboard pick the cleaning
//! tools that maximise a downstream model's performance.
//!
//! The scenario from the paper's introduction: an ML engineer has a dirty
//! training set and no idea which of the ten detection tools and three
//! repair tools to combine. DataLens treats the choice as a
//! hyperparameter-tuning problem and lets TPE search the space, scoring
//! each combination by the test MSE of a decision tree trained on the
//! cleaned data.
//!
//! Run with: `cargo run --release --example iterative_cleaning`

use datalens::iterative::{run_iterative_cleaning, IterativeCleaningConfig, SamplerKind};
use datalens_datasets::{registry, Task};
use datalens_fd::RuleSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth in hand (preloaded dataset), so both baselines of
    // Figure 5 can be printed.
    let dd = registry::dirty("nasa", 0).expect("preloaded dataset");

    let config = IterativeCleaningConfig {
        iterations: 12,
        sampler: SamplerKind::Tpe,
        seed: 0,
        ..IterativeCleaningConfig::new(datalens_datasets::nasa::TARGET, Task::Regression)
    };
    let report = run_iterative_cleaning(&dd.dirty, &RuleSet::new(), &config, Some(&dd.clean))?;

    println!("iterative cleaning on NASA (regression, minimise MSE)\n");
    println!("dirty-data baseline MSE:    {:>9.3}", report.dirty_baseline);
    println!(
        "ground-truth baseline MSE:  {:>9.3}",
        report.clean_baseline.expect("clean table supplied")
    );
    println!("\ntrial  detector          repairer             MSE");
    for (i, t) in report.trials.iter().enumerate() {
        println!(
            "{:>5}  {:<16}  {:<18}  {:>9.3}",
            i, t.detector, t.repairer, t.score
        );
    }
    println!(
        "\nbest combination: {} + {} (MSE {:.3})",
        report.best.detector, report.best.repairer, report.best.score
    );
    println!(
        "best-so-far curve: {:?}",
        report
            .best_curve
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}

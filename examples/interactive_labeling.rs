//! Interactive labeling for ML-based detection (§3 / Figure 3): drive a
//! RAHA session the way the dashboard's labeling UI does.
//!
//! The "user" here is the ground-truth-backed simulator the evaluation
//! uses; swap in any [`datalens::UserOracle`] implementation (e.g. one
//! that prompts on stdin) for a genuinely interactive session.
//!
//! Run with: `cargo run --release --example interactive_labeling`

use datalens::controller::{DashboardConfig, DashboardController};
use datalens::user::SimulatedUser;
use datalens_datasets::registry;
use datalens_detect::RahaConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dd = registry::dirty("beers", 1).expect("preloaded dataset");
    let mut dash = DashboardController::new(DashboardConfig::default())?;
    dash.ingest_dirty_dataset(&dd, "beers")?;

    for budget in [5usize, 10, 20] {
        // A slightly imperfect user: misses 10% of dirty cells.
        let mut user = SimulatedUser::noisy(&dd, 0.1, 0.0, budget as u64);
        let outcome = dash.run_raha_with_user(
            RahaConfig {
                labeling_budget: budget,
                seed: 1,
                ..Default::default()
            },
            &mut user,
        )?;
        let score = dd.score_detections(&outcome.detection.cells);
        println!(
            "budget {budget:>2}: reviewed {:>3} tuples ({:.1}× budget), labeled {:>2} dirty → \
             precision {:.3}  recall {:.3}  F1 {:.3}",
            outcome.tuples_reviewed,
            outcome.tuples_reviewed as f64 / budget as f64,
            outcome.tuples_labeled,
            score.precision,
            score.recall,
            score.f1,
        );
    }
    println!(
        "\nNote the paper's Figure 3 finding: the number of reviewed tuples\n\
         consistently exceeds the nominal budget, because the cluster-coverage\n\
         sampling strategy regularly surfaces clean tuples for review."
    );
    Ok(())
}

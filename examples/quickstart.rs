//! Quickstart: the full DataLens pipeline in ~40 lines.
//!
//! Loads the preloaded NASA dataset (dirty variant), profiles it, mines
//! FD rules, runs four error detectors, repairs with the ML imputer, and
//! prints the dashboard plus the generated DataSheet.
//!
//! Run with: `cargo run --example quickstart`

use datalens::controller::{DashboardConfig, DashboardController};
use datalens::dashboard::{render_tab, Tab};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dash = DashboardController::new(DashboardConfig::default())?;

    // 1. Ingest a preloaded dataset (option 1 of the paper's three
    //    ingestion paths; CSV upload and SQL sources work the same way).
    dash.ingest_preloaded("nasa")?;
    println!(
        "loaded {:?}: {} rows × {} columns",
        dash.table()?.name(),
        dash.table()?.n_rows(),
        dash.table()?.n_cols()
    );

    // 2. Profile + approximate FD discovery (the data is dirty, so exact
    //    FDs would be destroyed by the very errors we want to find).
    let profile = dash.profile()?;
    println!(
        "profile: {} missing cells, {} alerts",
        profile.table.missing_cells,
        profile.alerts.len()
    );
    let n_rules = dash.discover_rules_approx(0.1)?;
    println!("discovered {n_rules} candidate FD rules");

    // 3. Tag a known sentinel, then run the detector suite.
    dash.tag_value("99999")?;
    let n_errors = dash.run_detection(&["sd", "iqr", "mv_detector", "fahes"])?;
    println!("detected {n_errors} distinct erroneous cells");

    // 4. Repair with the ML imputer (decision trees for numerics, k-NN
    //    for categoricals).
    let n_repaired = dash.repair("ml_imputer")?;
    println!(
        "repaired {n_repaired} cells; repaired table has {} nulls",
        dash.repaired_table()?.null_count()
    );

    // 5. Outputs: detection-results tab and the DataSheet.
    println!("\n{}", render_tab(&mut dash, Tab::DetectionResults)?);
    println!("{}", dash.quality()?.render_text());
    let sheet = dash.generate_datasheet()?;
    println!("DataSheet:\n{}", sheet.to_json()?);
    Ok(())
}

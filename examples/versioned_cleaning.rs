//! Reproducible data quality (§5): Delta-style versioning, MLflow-style
//! run tracking, and DataSheet-driven reproduction of a cleaning pipeline.
//!
//! Run with: `cargo run --example versioned_cleaning`

use datalens::controller::{DashboardConfig, DashboardController};
use datalens::DataSheet;
use datalens_delta::DeltaTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workspace =
        std::env::temp_dir().join(format!("datalens_example_ws_{}", std::process::id()));
    std::fs::remove_dir_all(&workspace).ok();

    // A workspace-backed controller persists dataset folders, Delta
    // versions, and tracking runs.
    let mut dash = DashboardController::new(DashboardConfig {
        workspace_dir: Some(workspace.clone()),
        seed: 0,
        ..Default::default()
    })?;
    dash.ingest_csv_text(
        "customers.csv",
        "id,city,revenue\n1,hamburg,1200\n2,hamburg,900\n3,hamburg,1100\n\
         4,dresden,-1\n5,dresden,800\n6,dresden,850\n7,dresden,9000000\n8,,750\n",
    )?;

    // Detect + repair; every repair becomes a new Delta version.
    dash.tag_value("-1")?;
    dash.run_detection(&["sd", "iqr", "mv_detector"])?;
    dash.repair("standard_imputer")?;
    let sheet = dash.generate_datasheet()?;
    println!(
        "pipeline ran; DataSheet references delta versions {:?} → {:?}",
        sheet.detect_version, sheet.repaired_version
    );

    // Time travel through the dataset's history.
    let delta = DeltaTable::open(workspace.join("datasets/customers/delta"))?;
    println!("\nversion history:");
    for entry in delta.history()? {
        println!(
            "  v{} {:<8} {:?}",
            entry.version, entry.info.operation, entry.info.operation_parameters
        );
    }
    let v0 = delta.load_version(0)?;
    println!("\nv0 (dirty) nulls: {}", v0.null_count());
    let latest = delta.load()?;
    println!("latest (repaired) nulls: {}", latest.null_count());

    // Roll back: the dirty original becomes a *new* version — history is
    // append-only, nothing is erased.
    let rolled = delta.rollback(0)?;
    println!("rolled back to v0 as new version v{rolled}");

    // Save the DataSheet, then reproduce the pipeline from it.
    let sheet_path = workspace.join("customers_datasheet.json");
    sheet.save(&sheet_path)?;
    let reloaded = DataSheet::load(&sheet_path)?;
    let mut replay = DashboardController::new(DashboardConfig::default())?;
    replay.ingest_csv_text(
        "customers.csv",
        "id,city,revenue\n1,hamburg,1200\n2,hamburg,900\n3,hamburg,1100\n\
         4,dresden,-1\n5,dresden,800\n6,dresden,850\n7,dresden,9000000\n8,,750\n",
    )?;
    replay.replay_datasheet(&reloaded)?;
    println!(
        "\nreplay from DataSheet: {} detections, repaired table identical: {}",
        replay.detections()?.total(),
        replay.repaired_table()? == dash.repaired_table()?
    );

    // Where the MLflow-style runs landed.
    let store = dash.tracking().expect("workspace controller tracks runs");
    for exp in store.list_experiments()? {
        println!(
            "experiment {:?}: {} run(s)",
            exp.name,
            store.list_runs(&exp)?.len()
        );
    }

    std::fs::remove_dir_all(&workspace).ok();
    Ok(())
}
